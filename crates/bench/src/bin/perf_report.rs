//! Hot-path performance baseline: measures the per-ACT cost of the
//! Stream-Summary bucket table against the retained linear-scan reference
//! and writes `BENCH_table.json` so future PRs have a recorded perf
//! trajectory.
//!
//! ```text
//! cargo run --release -p mithril-bench --bin perf_report [-- --out PATH] [-- --obs]
//! ```
//!
//! With `--obs` the report additionally runs one observed simulation
//! (ring sinks + cycle-domain sampler attached) and records its exact
//! per-kind event counts plus the observed vs unobserved activation rate
//! — a quick read on both the event mix and the instrumentation's cost.
//!
//! The workload is the `table_hot_path` criterion stream: 30% hot-row hits,
//! 70% cold misses over a 4×K row universe, one RFM every 64 ACTs — the
//! same mix the simulator's activation path produces under mix-high.

use std::fmt::Write as _;
use std::time::Instant;

use mithril::{MithrilTable, NaiveTable};
use mithril_obs::KIND_NAMES;
use mithril_sim::{ObsConfig, SchedulerKind, Scheme, System, SystemConfig};
use mithril_trackers::{FrequencyTracker, NaiveSpaceSaving, SpaceSaving};
use mithril_workloads::mix_high;

const TABLE_SIZES: [usize; 4] = [32, 128, 512, 2048];
const OPS: usize = 100_000;
const RFM_EVERY: usize = 64;
/// Instructions per core for the end-to-end simulator rate measurement.
/// Both scheduler cores run the same count: the naive rescan's cost grows
/// with queue occupancy, so a shorter naive run would understate the gap.
const SIM_INSTS: u64 = 200_000;

fn act_stream(len: usize, universe: u64) -> Vec<u64> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 10 < 3 {
                x % 8
            } else {
                x % universe
            }
        })
        .collect()
}

/// Runs `f` repeatedly until ~200 ms elapse and returns ops/second.
fn measure(ops_per_run: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up.
    f();
    let t0 = Instant::now();
    let mut runs = 0u64;
    while t0.elapsed().as_millis() < 200 {
        f();
        runs += 1;
    }
    (runs as f64 * ops_per_run as f64) / t0.elapsed().as_secs_f64()
}

struct TableRow {
    k: usize,
    bucket_ops_per_sec: f64,
    naive_ops_per_sec: f64,
}

fn bench_tables() -> Vec<TableRow> {
    TABLE_SIZES
        .iter()
        .map(|&k| {
            let ops = act_stream(OPS, 4 * k as u64);
            let bucket = measure(OPS, || {
                let mut t = MithrilTable::<u16>::new(k);
                for (i, &r) in ops.iter().enumerate() {
                    t.on_activate(r);
                    if i % RFM_EVERY == RFM_EVERY - 1 {
                        std::hint::black_box(t.on_rfm());
                    }
                }
                std::hint::black_box(t.spread());
            });
            // The naive reference is orders of magnitude slower at large K;
            // shrink its stream so the report still finishes quickly.
            let naive_ops = if k >= 512 { OPS / 10 } else { OPS };
            let stream = &ops[..naive_ops];
            let naive = measure(naive_ops, || {
                let mut t = NaiveTable::new(k);
                for (i, &r) in stream.iter().enumerate() {
                    t.on_activate(r);
                    if i % RFM_EVERY == RFM_EVERY - 1 {
                        std::hint::black_box(t.on_rfm());
                    }
                }
                std::hint::black_box(t.spread());
            });
            TableRow {
                k,
                bucket_ops_per_sec: bucket,
                naive_ops_per_sec: naive,
            }
        })
        .collect()
}

fn bench_trackers() -> Vec<TableRow> {
    TABLE_SIZES
        .iter()
        .map(|&k| {
            let ops = act_stream(OPS, 4 * k as u64);
            let bucket = measure(OPS, || {
                let mut t = SpaceSaving::new(k);
                for &r in &ops {
                    t.record(r);
                }
                std::hint::black_box(t.min_count());
            });
            let naive_ops = if k >= 512 { OPS / 10 } else { OPS };
            let stream = &ops[..naive_ops];
            let naive = measure(naive_ops, || {
                let mut t = NaiveSpaceSaving::new(k);
                for &r in stream {
                    t.record(r);
                }
                std::hint::black_box(t.min_count());
            });
            TableRow {
                k,
                bucket_ops_per_sec: bucket,
                naive_ops_per_sec: naive,
            }
        })
        .collect()
}

struct SimRow {
    scheme: &'static str,
    event_acts_per_sec: f64,
    naive_acts_per_sec: f64,
    acts: u64,
    read_p50_ps: u64,
    read_p99_ps: u64,
}

/// End-to-end simulator activation rate (full System: cores + LLC +
/// controllers + DRAM) under `scheduler`, best of two runs, plus the
/// run's deterministic read-latency percentiles. Unlike the bucket-table
/// rows this measures the whole simulation loop, so it is the number
/// sweeps and fault campaigns actually experience.
fn sim_acts_per_sec(scheme: Scheme, scheduler: SchedulerKind, insts: u64) -> (f64, u64, u64, u64) {
    let mut best = 0.0f64;
    let mut acts = 0;
    let (mut p50, mut p99) = (0, 0);
    for _ in 0..2 {
        let mut cfg = SystemConfig::table_iii();
        cfg.cores = 4;
        cfg.scheme = scheme;
        cfg.scheduler = scheduler;
        let mut sys = System::new(cfg, mix_high(4, 11)).expect("valid scheme config");
        let t0 = Instant::now();
        let m = sys.run(insts, u64::MAX);
        let rate = m.counters.acts as f64 / t0.elapsed().as_secs_f64();
        acts = m.counters.acts;
        p50 = m.read_latency.p50();
        p99 = m.read_latency.p99();
        best = best.max(rate);
    }
    (best, acts, p50, p99)
}

fn bench_sim() -> Vec<SimRow> {
    let schemes: [(&'static str, Scheme); 3] = [
        ("none", Scheme::None),
        (
            "mithril",
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: None,
                plus: false,
            },
        ),
        ("para", Scheme::Para),
    ];
    schemes
        .iter()
        .map(|&(name, scheme)| {
            let (event, acts, p50, p99) =
                sim_acts_per_sec(scheme, SchedulerKind::EventQueue, SIM_INSTS);
            let (naive, ..) = sim_acts_per_sec(scheme, SchedulerKind::NaiveRescan, SIM_INSTS);
            SimRow {
                scheme: name,
                event_acts_per_sec: event,
                naive_acts_per_sec: naive,
                acts,
                read_p50_ps: p50,
                read_p99_ps: p99,
            }
        })
        .collect()
}

/// One observed simulation (ring sinks + sampler) under the default
/// mithril scheme: exact per-kind event counts, the number of time-series
/// rows sampled, and observed vs unobserved acts/s. The counts are
/// deterministic (fixed seed); the rates are measurements.
struct ObsSummary {
    counts: [u64; mithril_obs::KINDS],
    series_rows: usize,
    observed_acts_per_sec: f64,
    plain_acts_per_sec: f64,
}

fn bench_obs() -> ObsSummary {
    let scheme = Scheme::Mithril {
        rfm_th: 64,
        ad_th: None,
        plus: false,
    };
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = 4;
    cfg.scheme = scheme;
    let mut sys =
        System::with_obs(cfg, mix_high(4, 11), ObsConfig::default()).expect("valid scheme config");
    let t0 = Instant::now();
    let m = sys.run(SIM_INSTS, u64::MAX);
    let observed = m.counters.acts as f64 / t0.elapsed().as_secs_f64();
    let capture = sys.take_obs();
    let (plain, ..) = sim_acts_per_sec(scheme, SchedulerKind::EventQueue, SIM_INSTS);
    ObsSummary {
        counts: capture.total_counts(),
        series_rows: capture.channels.iter().map(|c| c.rows.len()).sum(),
        observed_acts_per_sec: observed,
        plain_acts_per_sec: plain,
    }
}

fn obs_summary_json(o: &ObsSummary) -> String {
    let counts: Vec<String> = KIND_NAMES
        .iter()
        .zip(o.counts.iter())
        .map(|(name, c)| format!("\"{name}\": {c}"))
        .collect();
    format!(
        "{{\n    \"counts\": {{{}}},\n    \"series_rows\": {},\n    \"observed_acts_per_sec\": {:.0},\n    \"plain_acts_per_sec\": {:.0}\n  }}",
        counts.join(", "),
        o.series_rows,
        o.observed_acts_per_sec,
        o.plain_acts_per_sec
    )
}

fn sim_rows_to_json(rows: &[SimRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"scheme\": \"{}\", \"event_acts_per_sec\": {:.0}, \"naive_acts_per_sec\": {:.0}, \"speedup\": {:.2}, \"acts\": {}, \"read_p50_ps\": {}, \"read_p99_ps\": {}}}{}",
            r.scheme,
            r.event_acts_per_sec,
            r.naive_acts_per_sec,
            r.event_acts_per_sec / r.naive_acts_per_sec,
            r.acts,
            r.read_p50_ps,
            r.read_p99_ps,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("  ]");
    s
}

fn rows_to_json(rows: &[TableRow]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"k\": {}, \"bucket_ops_per_sec\": {:.0}, \"naive_ops_per_sec\": {:.0}, \"speedup\": {:.2}}}{}",
            r.k,
            r.bucket_ops_per_sec,
            r.naive_ops_per_sec,
            r.bucket_ops_per_sec / r.naive_ops_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("  ]");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_table.json".to_string());
    let with_obs = args.iter().any(|a| a == "--obs");

    println!("# Mithril table hot path: bucket vs naive ({OPS} ACTs, RFM every {RFM_EVERY})");
    println!(
        "{:>6} {:>18} {:>18} {:>9}",
        "K", "bucket ops/s", "naive ops/s", "speedup"
    );
    let tables = bench_tables();
    for r in &tables {
        println!(
            "{:>6} {:>18.0} {:>18.0} {:>8.2}x",
            r.k,
            r.bucket_ops_per_sec,
            r.naive_ops_per_sec,
            r.bucket_ops_per_sec / r.naive_ops_per_sec
        );
    }
    println!("\n# Space-Saving tracker: bucket vs naive (record-only)");
    println!(
        "{:>6} {:>18} {:>18} {:>9}",
        "K", "bucket ops/s", "naive ops/s", "speedup"
    );
    let trackers = bench_trackers();
    for r in &trackers {
        println!(
            "{:>6} {:>18.0} {:>18.0} {:>8.2}x",
            r.k,
            r.bucket_ops_per_sec,
            r.naive_ops_per_sec,
            r.bucket_ops_per_sec / r.naive_ops_per_sec
        );
    }

    println!("\n# End-to-end simulator rate: event-driven vs naive-rescan controller core");
    println!("# (full System loop, 4 cores, mix-high; acts/s of simulated activations)");
    println!(
        "{:>10} {:>18} {:>18} {:>9} {:>12} {:>12}",
        "scheme", "event acts/s", "naive acts/s", "speedup", "read p50", "read p99"
    );
    let sim = bench_sim();
    for r in &sim {
        println!(
            "{:>10} {:>18.0} {:>18.0} {:>8.2}x {:>10}ps {:>10}ps",
            r.scheme,
            r.event_acts_per_sec,
            r.naive_acts_per_sec,
            r.event_acts_per_sec / r.naive_acts_per_sec,
            r.read_p50_ps,
            r.read_p99_ps
        );
    }

    let obs_section = if with_obs {
        let o = bench_obs();
        println!("\n# Observability summary: one observed run (mithril, 4 cores, mix-high)");
        println!(
            "# observed {:.0} acts/s vs plain {:.0} acts/s ({:.1}% overhead); {} series rows",
            o.observed_acts_per_sec,
            o.plain_acts_per_sec,
            (1.0 - o.observed_acts_per_sec / o.plain_acts_per_sec) * 100.0,
            o.series_rows
        );
        for (name, c) in KIND_NAMES.iter().zip(o.counts.iter()) {
            if *c > 0 {
                println!("{name:>20} {c:>12}");
            }
        }
        format!(",\n  \"obs_summary\": {}", obs_summary_json(&o))
    } else {
        String::new()
    };

    let json = format!(
        "{{\n  \"format_version\": {},\n  \"ops_per_run\": {OPS},\n  \"rfm_every\": {RFM_EVERY},\n  \"mithril_table\": {},\n  \"space_saving\": {},\n  \"sim_insts_per_core\": {SIM_INSTS},\n  \"sim_ops_per_sec\": {}{obs_section}\n}}\n",
        mithril_obs::FORMAT_VERSION,
        rows_to_json(&tables),
        rows_to_json(&trackers),
        sim_rows_to_json(&sim)
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
