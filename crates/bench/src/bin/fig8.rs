//! Figure 8 — the large-object-sweep access pattern (lbm-like).
//!
//! Reproduces the three panels of the paper's figure for the
//! [`StreamSweep`] workload:
//!
//! * **(a)** accessed DRAM row vs. access index over a large window — the
//!   sweep walks the whole footprint evenly;
//! * **(b)** the same, magnified to a small window — at any instant the
//!   accesses concentrate on a handful of rows;
//! * **(c)** the *activation* pattern of the same small window after the
//!   LLC and row-buffer filtering — conflicts between streams make the ACT
//!   count per row approach the lines-per-row count (128), which is why
//!   AdTH ∈ [100, 200] separates benign sweeps from attacks.
//!
//! Run: `cargo run --release -p mithril-bench --bin fig8`

use mithril_dram::ChannelId;
use mithril_memctrl::AddressMapping;
use mithril_sim::{Llc, LlcAccess, LlcConfig};
use mithril_workloads::{StreamSweep, TraceSource};

fn main() {
    let mapping = AddressMapping::new(mithril_dram::Geometry::table_iii_system());
    let mut sweep = StreamSweep::new(4, 1 << 18, 7);
    let mut llc = Llc::new(LlcConfig {
        size_bytes: 2 << 20,
        ..Default::default()
    });

    let total_ops = 400_000usize;
    let small_lo = 200_000usize;
    let small_hi = 202_000usize;

    let mut open_rows = vec![u64::MAX; mapping.geometry().banks_total()];
    let mut acts: Vec<(usize, u64)> = Vec::new();
    let mut accesses: Vec<(usize, u64)> = Vec::new();

    for i in 0..total_ops {
        let op = sweep.next_op();
        let addr = mapping.map_line(op.line_addr);
        // The panels plot one channel's banks, but the LLC must see every
        // op — channel-1 lines compete for the same cache capacity.
        let on_channel_0 = addr.channel == ChannelId(0);
        if on_channel_0 {
            accesses.push((i, addr.row));
        }
        if matches!(llc.access(op.line_addr, op.is_write), LlcAccess::Miss) {
            llc.fill(op.line_addr);
            if on_channel_0 && open_rows[addr.bank] != addr.row {
                open_rows[addr.bank] = addr.row;
                acts.push((i, addr.row));
            }
        }
    }

    // (a) Large window, uniformly subsampled. `accesses` holds only the
    // channel-0 share of the ops, so sample by vector length, not op
    // count.
    println!("# Fig 8(a): accessed row vs op index (large window, subsampled)");
    println!("panel,op_index,row");
    for (i, row) in accesses.iter().step_by((accesses.len() / 200).max(1)) {
        println!("a,{i},{row}");
    }
    // (b) Small window.
    println!("# Fig 8(b): accessed row vs op index (small window)");
    for (i, row) in accesses
        .iter()
        .filter(|(i, _)| (small_lo..small_hi).contains(i))
        .step_by(10)
    {
        println!("b,{i},{row}");
    }
    // (c) Activations in the small window.
    println!("# Fig 8(c): activated row vs op index (small window)");
    for (i, row) in acts
        .iter()
        .filter(|(i, _)| (small_lo..small_hi).contains(i))
    {
        println!("c,{i},{row}");
    }

    // Summary statistics backing the AdTH discussion (Section V-A).
    // Filter by op index: vector positions no longer track op indices
    // after the channel-0 filter above.
    let small_accesses: Vec<u64> = accesses
        .iter()
        .filter(|(i, _)| (small_lo..small_hi).contains(i))
        .map(|&(_, r)| r)
        .collect();
    let distinct_small: std::collections::HashSet<u64> = small_accesses.iter().copied().collect();
    let acts_small = acts
        .iter()
        .filter(|(i, _)| (small_lo..small_hi).contains(i))
        .count();
    println!();
    println!(
        "# small-window rows touched: {} (concentration, panel b)",
        distinct_small.len()
    );
    println!(
        "# small-window activations: {acts_small} over {} channel-0 accesses",
        small_accesses.len()
    );
    println!(
        "# lines per 8KB row: {} -> benign per-row ACT bursts stay ~O(128),",
        mapping.geometry().lines_per_row()
    );
    println!("# matching the effective AdTH range of 100-200 (paper Section V-A).");
}
