//! Figure 6 — feasible (Nentry, RFMTH) configurations per FlipTH.
//!
//! For each target FlipTH, sweeps RFMTH and prints the minimal table size
//! (KiB, from the solved `Nentry` and the M-bounded counter width) that
//! satisfies `M < FlipTH/2` (Theorem 1). Also prints the Lossy-Counting
//! variant at 25K/50K — the dotted lines of the paper's figure — using the
//! classic `(1/ε)·ln(εn)` space bound with the tracking-error budget
//! `ε·n = FlipTH/4` per window.
//!
//! Expected shape: monotone area-vs-RFMTH trade-off curves, shifted up as
//! FlipTH shrinks; Lossy Counting strictly above CbS at the same FlipTH.
//!
//! Run: `cargo run --release -p mithril-bench --bin fig6`

use mithril::{area, MithrilConfig};
use mithril_dram::Ddr5Timing;

fn lossy_counting_kib(flip_th: u64, timing: &Ddr5Timing) -> f64 {
    let budget = timing.act_budget_per_trefw() as f64;
    // Error budget: estimates must stay within FlipTH/4 of truth so the
    // greedy selection keeps a Theorem-1-style margin.
    let eps_n = flip_th as f64 / 4.0;
    let w = budget / eps_n; // 1/epsilon in items
    let entries = w * (budget / w).ln();
    // Entry: row address + full-width count + delta field.
    let addr_bits = 16.0;
    let count_bits = (budget.log2()).ceil();
    entries * (addr_bits + 2.0 * count_bits) / 8.0 / 1024.0
}

fn main() {
    let timing = Ddr5Timing::ddr5_4800();
    let flip_ths = [1_562u64, 3_125, 6_250, 12_500, 25_000, 50_000];
    let rfm_ths = [16u64, 32, 64, 128, 256, 512, 1_024];

    println!("# Figure 6: table size (KiB) for feasible (Nentry, RFMTH) pairs");
    println!("algorithm,flip_th,rfm_th,nentry,counter_bits,table_kib");
    for &flip in &flip_ths {
        for &rfm in &rfm_ths {
            match MithrilConfig::for_flip_threshold(flip, rfm, &timing) {
                Ok(cfg) => {
                    println!(
                        "cbs,{flip},{rfm},{},{},{:.3}",
                        cfg.nentry,
                        cfg.counter_bits(&timing),
                        cfg.table_kib()
                    );
                }
                Err(_) => println!("cbs,{flip},{rfm},-,-,infeasible"),
            }
        }
    }
    for &flip in &[25_000u64, 50_000] {
        let kib = lossy_counting_kib(flip, &timing);
        println!("lossy-counting,{flip},any,-,-,{kib:.3}");
    }
    println!();
    println!("# Cross-checks against the paper:");
    let c = MithrilConfig::for_flip_threshold(6_250, 128, &timing).unwrap();
    println!(
        "#   Mithril-128 @ 6.25K: {} entries, {:.2} KiB (paper: 0.84 KB)",
        c.nentry,
        c.table_kib()
    );
    let c = MithrilConfig::for_flip_threshold(1_500, 32, &timing).unwrap();
    println!(
        "#   Mithril-32  @ 1.5K:  {} entries, {:.2} KiB (paper: 4.64 KB)",
        c.nentry,
        c.table_kib()
    );
    println!(
        "#   Lossy-Counting @ 50K: {:.2} KiB vs CbS {:.2} KiB — LC needs the larger table",
        lossy_counting_kib(50_000, &timing),
        MithrilConfig::for_flip_threshold(50_000, 256, &timing)
            .unwrap()
            .table_kib()
    );
    let _ = area::UM2_PER_CAM_BIT;
}
