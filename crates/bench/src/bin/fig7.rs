//! Figure 7 — adaptive refresh: energy overhead and table-size cost vs AdTH.
//!
//! For the paper's two configurations, `(FlipTH, RFMTH) = (3.125K, 16)` and
//! `(6.25K, 64)`, sweeps the adaptive threshold `AdTH ∈ {0, 50, 100, 150,
//! 200}` and reports:
//!
//! * the **additional Nentry** (%) the Theorem-2 bound demands vs AdTH = 0;
//! * the **relative dynamic energy overhead** (%) vs the unprotected
//!   baseline, for multi-programmed (mix-high, mix-blend) and
//!   multi-threaded (fft, radix, pagerank) workloads.
//!
//! Expected shape (paper Fig. 7): the energy overhead collapses towards
//! zero in the AdTH ∈ [100, 200] band (one DRAM row holds 128 cache lines,
//! so benign sweeps never build a spread past ~128), while the extra table
//! cost stays small (≤ ~12% at the low FlipTH).
//!
//! Run: `cargo run --release -p mithril-bench --bin fig7`

use mithril::MithrilConfig;
use mithril_bench::{run_one, BinArgs};
use mithril_sim::{geomean, Scheme, SystemConfig};

fn main() {
    let args = BinArgs::parse();
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = args.cores;
    let timing = cfg.timing;

    let mp = ["mix-high", "mix-blend"];
    let mt = ["fft", "radix", "pagerank"];

    println!("# Figure 7: adaptive refresh (insts/core = {})", args.insts);
    println!("flip_th,rfm_th,ad_th,add_nentry_pct,mp_energy_overhead_pct,mt_energy_overhead_pct");
    for (flip, rfm) in [(3_125u64, 16u64), (6_250, 64)] {
        cfg.flip_th = flip;
        let base_n = MithrilConfig::for_flip_threshold(flip, rfm, &timing)
            .unwrap()
            .nentry;

        // Baselines are scheme-independent: compute once per workload.
        cfg.scheme = Scheme::None;
        let base_energy: Vec<(/*name*/ &str, f64)> = mp
            .iter()
            .chain(mt.iter())
            .map(|&name| (name, run_one(cfg, name, args.insts, args.seed).energy_pj))
            .collect();

        for ad in [0u64, 50, 100, 150, 200] {
            let ad_opt = if ad == 0 { None } else { Some(ad) };
            let n = MithrilConfig::solve(flip, rfm, 1, ad_opt, &timing)
                .unwrap()
                .nentry;
            let add_pct = (n as f64 / base_n as f64 - 1.0) * 100.0;

            cfg.scheme = Scheme::Mithril {
                rfm_th: rfm,
                ad_th: ad_opt,
                plus: false,
            };
            let overhead = |names: &[&str]| -> f64 {
                let ratios: Vec<f64> = names
                    .iter()
                    .map(|&name| {
                        let m = run_one(cfg, name, args.insts, args.seed);
                        let base = base_energy
                            .iter()
                            .find(|(n, _)| *n == name)
                            .expect("baseline")
                            .1;
                        m.energy_pj / base
                    })
                    .collect();
                (geomean(&ratios) - 1.0) * 100.0
            };
            println!(
                "{flip},{rfm},{ad},{add_pct:.1},{:.3},{:.3}",
                overhead(&mp),
                overhead(&mt)
            );
        }
    }
    println!();
    println!("# Expected: energy overhead falls to ~0 for AdTH in [100,200];");
    println!("# additional Nentry stays modest (paper: <= ~12% at FlipTH 3.125K).");
}
