//! Figure 10 — Mithril vs the RFM-interface-compatible schemes
//! (PARFM, BlockHammer).
//!
//! Regenerates all five panels across the FlipTH sweep:
//!
//! * **(a)** relative performance, normal workloads (geo-mean);
//! * **(b)** relative performance under the 32-row multi-sided RH attack;
//! * **(c)** relative performance under the BlockHammer-adversarial
//!   pattern;
//! * **(d)** relative dynamic energy, normal workloads;
//! * **(e)** per-bank table size (KB).
//!
//! The scheme panel comes from the shared scenario registry
//! ([`mithril_bench::rfm_compatible_schemes`]); the (FlipTH × scheme) grid
//! fans out on the sharded engine (`--threads N`).
//!
//! Expected shape (paper): Mithril+ ≈ 100% everywhere; Mithril ≥ ~98%;
//! PARFM degrades at low FlipTH (tiny solved RFMTH); BlockHammer collapses
//! under its adversarial pattern (double-digit % loss) and throttles benign
//! threads at FlipTH = 1.5K; PARFM burns the most energy; Mithril tables
//! are 4–60× smaller than BlockHammer's.
//!
//! Run: `cargo run --release -p mithril-bench --bin fig10`

use std::collections::HashMap;

use mithril::MithrilConfig;
use mithril_baselines::{BlockHammerConfig, FLIP_TH_SWEEP};
use mithril_bench::{
    default_rfm_th, rfm_compatible_schemes, run_one, run_sharded, BinArgs, NORMAL_WORKLOADS,
};
use mithril_sim::{geomean, Metrics, Scheme, SystemConfig};

/// Short-slice NBL calibration (see `BlockHammerConfig::with_nbl_scaled`):
/// our slice exposes one ~128-ACT sweep burst per row where the full
/// window accumulates ~700 ACTs.
const NBL_SCALE: u64 = 6;

fn main() {
    let args = BinArgs::parse();
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = args.cores;
    let timing = cfg.timing;

    // Baselines depend only on the workload: fan them out first.
    let baseline_names: Vec<&str> = NORMAL_WORKLOADS
        .iter()
        .chain(["attack-multi", "attack-bh"].iter())
        .copied()
        .collect();
    cfg.scheme = Scheme::None;
    let baseline_runs = run_sharded(&baseline_names, args.pool(), args.seed, |name, _| {
        run_one(cfg, name, args.insts, args.seed)
    });
    let baselines: HashMap<&str, Metrics> = baseline_names.into_iter().zip(baseline_runs).collect();

    println!(
        "# Figure 10 (insts/core = {}, {} engine threads)",
        args.insts, args.threads
    );
    println!("panel,flip_th,scheme,value");

    let combos: Vec<(u64, &'static str, Scheme)> = FLIP_TH_SWEEP
        .iter()
        .flat_map(|&flip| {
            rfm_compatible_schemes(flip, NBL_SCALE)
                .into_iter()
                .map(move |(label, scheme)| (flip, label, scheme))
        })
        .collect();
    let rows = run_sharded(
        &combos,
        args.pool(),
        args.seed,
        |&(flip, label, scheme), _| {
            let mut cfg = cfg;
            cfg.flip_th = flip;
            cfg.scheme = scheme;
            let mut out = String::new();
            // (a)+(d): normal workloads.
            let mut ipcs = Vec::new();
            let mut energies = Vec::new();
            for name in NORMAL_WORKLOADS {
                let m = run_one(cfg, name, args.insts, args.seed);
                let b = &baselines[name];
                ipcs.push(m.normalized_ipc(b));
                energies.push(m.relative_energy(b));
            }
            out.push_str(&format!(
                "a_perf_normal_pct,{flip},{label},{:.2}\n",
                geomean(&ipcs) * 100.0
            ));
            out.push_str(&format!(
                "d_energy_overhead_pct,{flip},{label},{:.3}\n",
                (geomean(&energies) - 1.0) * 100.0
            ));
            // (b): multi-sided RH attack.
            let m = run_one(cfg, "attack-multi", args.insts, args.seed);
            out.push_str(&format!(
                "b_perf_multisided_pct,{flip},{label},{:.2}\n",
                m.normalized_ipc(&baselines["attack-multi"]) * 100.0
            ));
            // (c): BlockHammer-adversarial pattern.
            let m = run_one(cfg, "attack-bh", args.insts, args.seed);
            out.push_str(&format!(
                "c_perf_adversarial_pct,{flip},{label},{:.2}",
                m.normalized_ipc(&baselines["attack-bh"]) * 100.0
            ));
            out
        },
    );
    for row in rows {
        println!("{row}");
    }
    // (e): table sizes, analytic.
    for flip in FLIP_TH_SWEEP {
        let bh = BlockHammerConfig::for_flip_threshold(flip, &timing).table_kib();
        let mith = MithrilConfig::solve(flip, default_rfm_th(flip), 1, Some(200), &timing)
            .map(|c| c.table_kib())
            .unwrap_or(f64::NAN);
        println!("e_table_kib,{flip},blockhammer,{bh:.2}");
        println!("e_table_kib,{flip},mithril,{mith:.2}");
    }
    println!();
    println!("# Expected: mithril+ ~100% in (a)-(c); blockhammer drops hard in (c);");
    println!("# parfm leads (d) energy overhead; mithril tables 4-60x smaller in (e).");
}
