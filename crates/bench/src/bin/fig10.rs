//! Figure 10 — Mithril vs the RFM-interface-compatible schemes
//! (PARFM, BlockHammer).
//!
//! Regenerates all five panels across the FlipTH sweep:
//!
//! * **(a)** relative performance, normal workloads (geo-mean);
//! * **(b)** relative performance under the 32-row multi-sided RH attack;
//! * **(c)** relative performance under the BlockHammer-adversarial
//!   pattern;
//! * **(d)** relative dynamic energy, normal workloads;
//! * **(e)** per-bank table size (KB).
//!
//! Expected shape (paper): Mithril+ ≈ 100% everywhere; Mithril ≥ ~98%;
//! PARFM degrades at low FlipTH (tiny solved RFMTH); BlockHammer collapses
//! under its adversarial pattern (double-digit % loss) and throttles benign
//! threads at FlipTH = 1.5K; PARFM burns the most energy; Mithril tables
//! are 4–60× smaller than BlockHammer's.
//!
//! Run: `cargo run --release -p mithril-bench --bin fig10`

use std::collections::HashMap;

use mithril::MithrilConfig;
use mithril_baselines::{BlockHammerConfig, FLIP_TH_SWEEP};
use mithril_bench::{default_rfm_th, run_one, BinArgs};
use mithril_sim::{geomean, Metrics, Scheme, SystemConfig};

const NORMAL: [&str; 5] = ["mix-high", "mix-blend", "fft", "radix", "pagerank"];

/// Short-slice NBL calibration (see `BlockHammerConfig::with_nbl_scaled`):
/// our slice exposes one ~128-ACT sweep burst per row where the full
/// window accumulates ~700 ACTs.
const NBL_SCALE: u64 = 6;

fn schemes_for(flip: u64) -> Vec<(&'static str, Scheme)> {
    let rfm = default_rfm_th(flip);
    vec![
        ("parfm", Scheme::Parfm),
        ("blockhammer", Scheme::BlockHammer { nbl_scale: NBL_SCALE }),
        ("mithril", Scheme::Mithril { rfm_th: rfm, ad_th: Some(200), plus: false }),
        ("mithril+", Scheme::Mithril { rfm_th: rfm, ad_th: Some(200), plus: true }),
    ]
}

fn main() {
    let args = BinArgs::parse();
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = args.cores;
    let timing = cfg.timing;

    // Baselines depend only on the workload.
    let mut baselines: HashMap<&str, Metrics> = HashMap::new();
    cfg.scheme = Scheme::None;
    for name in NORMAL.iter().chain(["attack-multi", "attack-bh"].iter()) {
        baselines.insert(name, run_one(cfg, name, args.insts, args.seed));
    }

    println!("# Figure 10 (insts/core = {})", args.insts);
    println!("panel,flip_th,scheme,value");
    for flip in FLIP_TH_SWEEP {
        cfg.flip_th = flip;
        for (label, scheme) in schemes_for(flip) {
            cfg.scheme = scheme;
            // (a)+(d): normal workloads.
            let mut ipcs = Vec::new();
            let mut energies = Vec::new();
            for name in NORMAL {
                let m = run_one(cfg, name, args.insts, args.seed);
                let b = &baselines[name];
                ipcs.push(m.normalized_ipc(b));
                energies.push(m.relative_energy(b));
            }
            println!("a_perf_normal_pct,{flip},{label},{:.2}", geomean(&ipcs) * 100.0);
            println!(
                "d_energy_overhead_pct,{flip},{label},{:.3}",
                (geomean(&energies) - 1.0) * 100.0
            );
            // (b): multi-sided RH attack.
            let m = run_one(cfg, "attack-multi", args.insts, args.seed);
            println!(
                "b_perf_multisided_pct,{flip},{label},{:.2}",
                m.normalized_ipc(&baselines["attack-multi"]) * 100.0
            );
            // (c): BlockHammer-adversarial pattern.
            let m = run_one(cfg, "attack-bh", args.insts, args.seed);
            println!(
                "c_perf_adversarial_pct,{flip},{label},{:.2}",
                m.normalized_ipc(&baselines["attack-bh"]) * 100.0
            );
        }
        // (e): table sizes.
        let bh = BlockHammerConfig::for_flip_threshold(flip, &timing).table_kib();
        let mith = MithrilConfig::solve(flip, default_rfm_th(flip), 1, Some(200), &timing)
            .map(|c| c.table_kib())
            .unwrap_or(f64::NAN);
        println!("e_table_kib,{flip},blockhammer,{bh:.2}");
        println!("e_table_kib,{flip},mithril,{mith:.2}");
    }
    println!();
    println!("# Expected: mithril+ ~100% in (a)-(c); blockhammer drops hard in (c);");
    println!("# parfm leads (d) energy overhead; mithril tables 4-60x smaller in (e).");
}
