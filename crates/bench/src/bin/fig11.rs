//! Figure 11 — Mithril vs the RFM-interface-*non*-compatible prior work
//! (PARA, CBT, TWiCe, Graphene).
//!
//! Panels across the FlipTH sweep:
//!
//! * **(a)** relative performance, normal workloads (geo-mean);
//! * **(b)** relative performance under the multi-sided RH attack;
//! * **(c)** relative dynamic energy, normal workloads.
//!
//! The scheme panel comes from the shared scenario registry
//! ([`mithril_bench::arr_schemes`]); the (FlipTH × scheme) grid fans out
//! on the sharded engine (`--threads N`).
//!
//! Expected shape (paper): Mithril+ within ~0.2% of Graphene/TWiCe/CBT;
//! Mithril ≤ ~2% worse even at FlipTH 1.5K; energy overheads of Mithril/
//! TWiCe/Graphene all ≤ ~1%, PARA growing as FlipTH falls.
//!
//! Run: `cargo run --release -p mithril-bench --bin fig11`

use std::collections::HashMap;

use mithril_baselines::FLIP_TH_SWEEP;
use mithril_bench::{arr_schemes, run_one, run_sharded, BinArgs, NORMAL_WORKLOADS};
use mithril_sim::{geomean, Metrics, Scheme, SystemConfig};

fn main() {
    let args = BinArgs::parse();
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = args.cores;

    let baseline_names: Vec<&str> = NORMAL_WORKLOADS
        .iter()
        .chain(["attack-multi"].iter())
        .copied()
        .collect();
    cfg.scheme = Scheme::None;
    let baseline_runs = run_sharded(&baseline_names, args.pool(), args.seed, |name, _| {
        run_one(cfg, name, args.insts, args.seed)
    });
    let baselines: HashMap<&str, Metrics> = baseline_names.into_iter().zip(baseline_runs).collect();

    println!(
        "# Figure 11 (insts/core = {}, {} engine threads)",
        args.insts, args.threads
    );
    println!("panel,flip_th,scheme,value");

    let combos: Vec<(u64, &'static str, Scheme)> = FLIP_TH_SWEEP
        .iter()
        .flat_map(|&flip| {
            arr_schemes(flip)
                .into_iter()
                .map(move |(label, scheme)| (flip, label, scheme))
        })
        .collect();
    let rows = run_sharded(
        &combos,
        args.pool(),
        args.seed,
        |&(flip, label, scheme), _| {
            let mut cfg = cfg;
            cfg.flip_th = flip;
            cfg.scheme = scheme;
            let mut ipcs = Vec::new();
            let mut energies = Vec::new();
            for name in NORMAL_WORKLOADS {
                let m = run_one(cfg, name, args.insts, args.seed);
                let b = &baselines[name];
                ipcs.push(m.normalized_ipc(b));
                energies.push(m.relative_energy(b));
            }
            let attack = run_one(cfg, "attack-multi", args.insts, args.seed);
            format!(
                "a_perf_normal_pct,{flip},{label},{:.2}\n\
             c_energy_overhead_pct,{flip},{label},{:.3}\n\
             b_perf_multisided_pct,{flip},{label},{:.2}",
                geomean(&ipcs) * 100.0,
                (geomean(&energies) - 1.0) * 100.0,
                attack.normalized_ipc(&baselines["attack-multi"]) * 100.0
            )
        },
    );
    for row in rows {
        println!("{row}");
    }
    println!();
    println!("# Expected: mithril+ tracks graphene/twice/cbt within fractions of a");
    println!("# percent; mithril within ~2%; para's overheads grow at low FlipTH.");
}
