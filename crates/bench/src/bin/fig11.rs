//! Figure 11 — Mithril vs the RFM-interface-*non*-compatible prior work
//! (PARA, CBT, TWiCe, Graphene).
//!
//! Panels across the FlipTH sweep:
//!
//! * **(a)** relative performance, normal workloads (geo-mean);
//! * **(b)** relative performance under the multi-sided RH attack;
//! * **(c)** relative dynamic energy, normal workloads.
//!
//! Expected shape (paper): Mithril+ within ~0.2% of Graphene/TWiCe/CBT;
//! Mithril ≤ ~2% worse even at FlipTH 1.5K; energy overheads of Mithril/
//! TWiCe/Graphene all ≤ ~1%, PARA growing as FlipTH falls.
//!
//! Run: `cargo run --release -p mithril-bench --bin fig11`

use std::collections::HashMap;

use mithril_baselines::FLIP_TH_SWEEP;
use mithril_bench::{default_rfm_th, run_one, BinArgs};
use mithril_sim::{geomean, Metrics, Scheme, SystemConfig};

const NORMAL: [&str; 5] = ["mix-high", "mix-blend", "fft", "radix", "pagerank"];

fn schemes_for(flip: u64) -> Vec<(&'static str, Scheme)> {
    let rfm = default_rfm_th(flip);
    vec![
        ("para", Scheme::Para),
        ("cbt", Scheme::Cbt),
        ("twice", Scheme::TwiCe),
        ("graphene", Scheme::Graphene),
        ("mithril", Scheme::Mithril { rfm_th: rfm, ad_th: Some(200), plus: false }),
        ("mithril+", Scheme::Mithril { rfm_th: rfm, ad_th: Some(200), plus: true }),
    ]
}

fn main() {
    let args = BinArgs::parse();
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = args.cores;

    let mut baselines: HashMap<&str, Metrics> = HashMap::new();
    cfg.scheme = Scheme::None;
    for name in NORMAL.iter().chain(["attack-multi"].iter()) {
        baselines.insert(name, run_one(cfg, name, args.insts, args.seed));
    }

    println!("# Figure 11 (insts/core = {})", args.insts);
    println!("panel,flip_th,scheme,value");
    for flip in FLIP_TH_SWEEP {
        cfg.flip_th = flip;
        for (label, scheme) in schemes_for(flip) {
            cfg.scheme = scheme;
            let mut ipcs = Vec::new();
            let mut energies = Vec::new();
            for name in NORMAL {
                let m = run_one(cfg, name, args.insts, args.seed);
                let b = &baselines[name];
                ipcs.push(m.normalized_ipc(b));
                energies.push(m.relative_energy(b));
            }
            println!("a_perf_normal_pct,{flip},{label},{:.2}", geomean(&ipcs) * 100.0);
            println!(
                "c_energy_overhead_pct,{flip},{label},{:.3}",
                (geomean(&energies) - 1.0) * 100.0
            );
            let m = run_one(cfg, "attack-multi", args.insts, args.seed);
            println!(
                "b_perf_multisided_pct,{flip},{label},{:.2}",
                m.normalized_ipc(&baselines["attack-multi"]) * 100.0
            );
        }
    }
    println!();
    println!("# Expected: mithril+ tracks graphene/twice/cbt within fractions of a");
    println!("# percent; mithril within ~2%; para's overheads grow at low FlipTH.");
}
