//! Criterion benchmark for end-to-end simulator throughput: how fast the
//! full 16-core system simulates one slice of mix-high, with and without
//! Mithril. Useful for spotting performance regressions in the command
//! loop before the long figure runs.

use criterion::{criterion_group, criterion_main, Criterion};
use mithril_sim::{Scheme, System, SystemConfig};
use mithril_workloads::mix_high;
use std::hint::black_box;

fn run(scheme: Scheme, insts: u64) -> f64 {
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = 8;
    cfg.flip_th = 6_250;
    cfg.scheme = scheme;
    let mut sys = System::new(cfg, mix_high(8, 5)).expect("valid config");
    sys.run(insts, u64::MAX).aggregate_ipc
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_8core_10k_insts");
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(run(Scheme::None, 10_000)))
    });
    g.bench_function("mithril_128", |b| {
        b.iter(|| {
            black_box(run(
                Scheme::Mithril {
                    rfm_th: 128,
                    ad_th: Some(200),
                    plus: false,
                },
                10_000,
            ))
        })
    });
    g.bench_function("blockhammer", |b| {
        b.iter(|| black_box(run(Scheme::BlockHammer { nbl_scale: 6 }, 10_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
