//! Criterion benchmark for the memory-controller scheduler cores: drains
//! identical random-read batches through the event-driven core and the
//! naive full-rescan reference across a queue-depth × bank-count grid.
//!
//! The event core's advantage grows with bank count (the rescan is
//! O(banks × queue) per command; the event core only recomputes dirtied
//! lanes), so this grid is the regression canary for the scaling claim in
//! ARCHITECTURE.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mithril_dram::{Ddr5Timing, DramDevice, Geometry, NoMitigation, PS_PER_US};
use mithril_memctrl::{
    AddressMapping, McConfig, MemRequest, MemoryController, NoMcMitigation, SchedulerKind,
};
use std::hint::black_box;

/// Requests drained per benchmark iteration.
const REQS: u64 = 2_000;

fn geometry(banks_per_rank: usize) -> Geometry {
    Geometry {
        banks_per_rank,
        // Small bank arrays keep per-iteration device construction cheap;
        // row count does not affect scheduling cost.
        rows_per_bank: 4_096,
        ..Geometry::default()
    }
}

fn controller(kind: SchedulerKind, banks_per_rank: usize) -> MemoryController {
    let device = DramDevice::new(
        geometry(banks_per_rank),
        Ddr5Timing::ddr5_4800(),
        100_000,
        1,
        |_| Box::new(NoMitigation),
    );
    MemoryController::with_scheduler(device, McConfig::default(), Box::new(NoMcMitigation), kind)
}

/// Enqueues batches of `depth` random-row reads and fully drains them.
fn drain(mut mc: MemoryController, banks_per_rank: usize, depth: u64) -> u64 {
    let geometry = geometry(banks_per_rank);
    let map = AddressMapping::new(geometry);
    let lines = geometry.rows_per_bank * geometry.row_bytes / geometry.line_bytes;
    let total_lines = lines * (geometry.ranks * geometry.banks_per_rank) as u64;
    let mut x = 0x2545_f491_4f6c_dd1du64;
    let mut now = 0u64;
    let mut done = Vec::new();
    for i in 0..REQS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        mc.enqueue(MemRequest::read(i, map.map_line(x % total_lines), 0, now));
        if i % depth == depth - 1 {
            now += PS_PER_US;
            done.clear();
            mc.advance_until_into(now, &mut done);
        }
    }
    done.clear();
    mc.advance_until_into(now + 10_000 * PS_PER_US, &mut done);
    mc.stats().acts
}

fn bench_controller(c: &mut Criterion) {
    for (kind, kind_name) in [
        (SchedulerKind::EventQueue, "event"),
        (SchedulerKind::NaiveRescan, "naive"),
    ] {
        let mut g = c.benchmark_group(format!("controller_advance/{kind_name}"));
        g.sample_size(10);
        for banks in [8usize, 32, 64] {
            for depth in [4u64, 32] {
                g.bench_function(format!("banks{banks}_depth{depth}"), |b| {
                    // Device construction (per-row oracle state) dwarfs the
                    // drain at these sizes; keep it outside the timer.
                    b.iter_batched(
                        || controller(kind, banks),
                        |mc| black_box(drain(mc, banks, depth)),
                        BatchSize::LargeInput,
                    )
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
