//! Criterion micro-benchmarks for the streaming trackers: the per-ACT cost
//! a hardware tracker's software model pays, across the algorithm families
//! of paper Table I.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mithril_trackers::{
    CountMinSketch, CounterTree, CountingBloomFilter, FrequencyTracker, LossyCounting, SpaceSaving,
};
use std::hint::black_box;

/// A deterministic pseudo-random row stream with a hot head.
fn stream(len: usize) -> Vec<u64> {
    let mut x = 0x1234_5678_9abc_def0u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 10 < 3 {
                x % 8 // hot rows
            } else {
                x % 65_536
            }
        })
        .collect()
}

fn bench_record(c: &mut Criterion) {
    let ops = stream(10_000);
    let mut g = c.benchmark_group("record_10k_acts");
    g.bench_function("space_saving_256", |b| {
        b.iter_batched(
            || SpaceSaving::new(256),
            |mut t| {
                for &x in &ops {
                    t.record(black_box(x));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("lossy_counting_w256", |b| {
        b.iter_batched(
            || LossyCounting::new(256),
            |mut t| {
                for &x in &ops {
                    t.record(black_box(x));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("count_min_4x1024", |b| {
        b.iter_batched(
            || CountMinSketch::new(4, 10, 7),
            |mut t| {
                for &x in &ops {
                    t.record(black_box(x));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cbf_4096x4", |b| {
        b.iter_batched(
            || CountingBloomFilter::new(12, 4, 7),
            |mut t| {
                for &x in &ops {
                    t.record(black_box(x));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("counter_tree_255", |b| {
        b.iter_batched(
            || CounterTree::new(65_536, 255, 64),
            |mut t| {
                for &x in &ops {
                    t.record(black_box(x));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let ops = stream(10_000);
    let mut t = SpaceSaving::new(256);
    for &x in &ops {
        t.record(x);
    }
    c.bench_function("space_saving_estimate", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &ops[..1000] {
                acc += t.estimate(black_box(x));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_record, bench_estimate);
criterion_main!(benches);
