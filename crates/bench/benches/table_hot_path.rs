//! The hot path of the whole reproduction: the per-ACT Mithril table
//! update. Compares the Stream-Summary bucket implementation
//! ([`mithril::MithrilTable`]) against the retained linear-scan reference
//! ([`mithril::NaiveTable`]) across table sizes, on the same mixed
//! hit/miss/RFM stream. The `perf_report` binary runs the same comparison
//! and records it in `BENCH_table.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mithril::{MithrilTable, NaiveTable};
use std::hint::black_box;

/// Deterministic stream with a hot head (hits) and a long tail (misses),
/// sized per-table so eviction pressure is comparable across sizes.
fn act_stream(len: usize, universe: u64) -> Vec<u64> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 10 < 3 {
                x % 8 // hot rows: table hits
            } else {
                x % universe // cold tail: misses + evictions
            }
        })
        .collect()
}

const OPS: usize = 10_000;
const RFM_EVERY: usize = 64;

fn bench_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_hot_path");
    for &k in &[32usize, 128, 512, 2048] {
        let ops = act_stream(OPS, 4 * k as u64);
        g.bench_function(format!("bucket_k{k}"), |b| {
            b.iter_batched(
                || MithrilTable::<u16>::new(k),
                |mut t| {
                    for (i, &r) in ops.iter().enumerate() {
                        t.on_activate(black_box(r));
                        if i % RFM_EVERY == RFM_EVERY - 1 {
                            black_box(t.on_rfm());
                        }
                    }
                    t
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("naive_k{k}"), |b| {
            b.iter_batched(
                || NaiveTable::new(k),
                |mut t| {
                    for (i, &r) in ops.iter().enumerate() {
                        t.on_activate(black_box(r));
                        if i % RFM_EVERY == RFM_EVERY - 1 {
                            black_box(t.on_rfm());
                        }
                    }
                    t
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
