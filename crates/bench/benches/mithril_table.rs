//! Criterion micro-benchmarks for the Mithril engine itself: per-ACT table
//! update, the per-RFM greedy selection (the work that must fit in a tRFM
//! window), and the configuration solver.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mithril::{bounds, MithrilConfig, MithrilScheme, MithrilTable};
use mithril_dram::{Ddr5Timing, DramMitigation};
use std::hint::black_box;

fn act_stream(len: usize, rows: u64) -> Vec<u64> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % rows
        })
        .collect()
}

fn bench_table_ops(c: &mut Criterion) {
    let ops = act_stream(10_000, 4_096);
    let mut g = c.benchmark_group("mithril_table");
    for &n in &[64usize, 256, 1024] {
        g.bench_function(format!("act_10k_n{n}"), |b| {
            b.iter_batched(
                || MithrilTable::<u16>::new(n),
                |mut t| {
                    for &r in &ops {
                        t.on_activate(black_box(r));
                    }
                    t
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("rfm_selection_n{n}"), |b| {
            let mut t = MithrilTable::<u16>::new(n);
            for &r in &ops {
                t.on_activate(r);
            }
            b.iter(|| {
                // Selection + the find-new-max scan that must complete
                // within tRFM.
                t.on_activate(black_box(7));
                black_box(t.on_rfm())
            })
        });
    }
    g.finish();
}

fn bench_engine_interval(c: &mut Criterion) {
    // A full RFM interval: RFMTH ACTs + one RFM, as the DRAM bank sees it.
    let timing = Ddr5Timing::ddr5_4800();
    let cfg = MithrilConfig::for_flip_threshold(6_250, 128, &timing).unwrap();
    let ops = act_stream(128, 65_536);
    c.bench_function("mithril_engine_rfm_interval_128", |b| {
        b.iter_batched(
            || MithrilScheme::new(cfg),
            |mut m| {
                for &r in &ops {
                    m.on_activate(r);
                }
                black_box(m.on_rfm());
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_solver(c: &mut Criterion) {
    let timing = Ddr5Timing::ddr5_4800();
    c.bench_function("config_solver_6_25k_128", |b| {
        b.iter(|| MithrilConfig::for_flip_threshold(black_box(6_250), 128, &timing).unwrap())
    });
    c.bench_function("theorem1_bound_n1024", |b| {
        b.iter(|| bounds::theorem1_bound(black_box(1024), 64, &timing))
    });
}

criterion_group!(
    benches,
    bench_table_ops,
    bench_engine_interval,
    bench_solver
);
criterion_main!(benches);
