//! Bucket vs naive Space-Saving, against the other tracker families, on
//! one shared stream — the per-ACT tracker cost that BlockHammer and MINT
//! identify as the deciding practicality factor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mithril_trackers::{
    CountMinSketch, FrequencyTracker, LossyCounting, NaiveSpaceSaving, SpaceSaving,
};
use std::hint::black_box;

fn stream(len: usize) -> Vec<u64> {
    let mut x = 0x1234_5678_9abc_def0u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 10 < 3 {
                x % 8 // hot rows
            } else {
                x % 65_536
            }
        })
        .collect()
}

fn record_all<T: FrequencyTracker>(mut t: T, ops: &[u64]) -> T {
    for &x in ops {
        t.record(black_box(x));
    }
    t
}

fn bench_compare(c: &mut Criterion) {
    let ops = stream(10_000);
    let mut g = c.benchmark_group("tracker_compare");
    for &k in &[128usize, 512, 2048] {
        g.bench_function(format!("space_saving_bucket_{k}"), |b| {
            b.iter_batched(
                || SpaceSaving::new(k),
                |t| record_all(t, &ops),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("space_saving_naive_{k}"), |b| {
            b.iter_batched(
                || NaiveSpaceSaving::new(k),
                |t| record_all(t, &ops),
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("lossy_counting_w512", |b| {
        b.iter_batched(
            || LossyCounting::new(512),
            |t| record_all(t, &ops),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("count_min_4x1024", |b| {
        b.iter_batched(
            || CountMinSketch::new(4, 10, 7),
            |t| record_all(t, &ops),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
