//! The paper's workload mixes (Section VI-A): 16-thread multi-programmed
//! mixes and multi-threaded kernels.

use crate::attacks::{BlockHammerAdversarial, ChannelPinned, DoubleSided, MultiSided, RowAttack};
use crate::kernels::{
    BlockedFft, CacheResident, PageRankLike, PointerChase, RadixPartition, RandomAccess,
    StreamSweep,
};
use crate::op::TraceOp;
use crate::TraceSource;
use mithril_baselines::{BlockHammer, BlockHammerConfig};
use mithril_dram::{ChannelId, Ddr5Timing};
use mithril_memctrl::AddressMapping;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// One hardware thread's trace source.
pub struct Thread {
    name: String,
    source: Box<dyn TraceSource + Send>,
}

impl Thread {
    /// Wraps a trace source as a thread.
    pub fn new(name: impl Into<String>, source: Box<dyn TraceSource + Send>) -> Self {
        Self {
            name: name.into(),
            source,
        }
    }

    /// The thread's workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The next trace operation.
    pub fn next_op(&mut self) -> TraceOp {
        self.source.next_op()
    }

    /// Unwraps the thread back into its trace source (used by trace
    /// capture to interpose a recorder between the source and the core).
    pub fn into_source(self) -> Box<dyn TraceSource + Send> {
        self.source
    }
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread").field("name", &self.name).finish()
    }
}

/// A named set of threads forming one experiment workload.
///
/// The name is an owned `String` so dynamically-named sets — trace
/// replays (`trace:<source>`), externally ingested captures — fit the
/// same type as the built-in generator mixes.
#[derive(Debug)]
pub struct ThreadSet {
    /// Workload-set name (e.g. `mix-high`).
    pub name: String,
    /// The threads, index = hardware thread id.
    pub threads: Vec<Thread>,
}

/// `mix-high`: 16 memory-intensive traces (paper: memory-intensive SPEC
/// CPU2017 SimPoints).
pub fn mix_high(cores: usize, seed: u64) -> ThreadSet {
    let mut threads = Vec::with_capacity(cores);
    for t in 0..cores {
        let s = seed.wrapping_mul(1000).wrapping_add(t as u64);
        let source: Box<dyn TraceSource + Send> = match t % 4 {
            0 => Box::new(StreamSweep::new(4, 1 << 20, s)),
            1 => Box::new(RandomAccess::new(1 << 21, s)),
            2 => Box::new(StreamSweep::new(2, 1 << 22, s)),
            _ => Box::new(PointerChase::new(1 << 20, s)),
        };
        threads.push(Thread::new(format!("mix-high/{t}"), source));
    }
    ThreadSet {
        name: "mix-high".into(),
        threads,
    }
}

/// `mix-blend`: a random blend of intensive and cache-resident traces.
pub fn mix_blend(cores: usize, seed: u64) -> ThreadSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut threads = Vec::with_capacity(cores);
    for t in 0..cores {
        let s = seed.wrapping_mul(2000).wrapping_add(t as u64);
        let source: Box<dyn TraceSource + Send> = match rng.random_range(0..5u32) {
            0 => Box::new(StreamSweep::new(3, 1 << 20, s)),
            1 => Box::new(RandomAccess::new(1 << 20, s)),
            2 => Box::new(CacheResident::new(1 << 12, 1 << 20, s)),
            3 => Box::new(CacheResident::new(1 << 13, 1 << 21, s)),
            _ => Box::new(PointerChase::new(1 << 18, s)),
        };
        threads.push(Thread::new(format!("mix-blend/{t}"), source));
    }
    ThreadSet {
        name: "mix-blend".into(),
        threads,
    }
}

/// Multi-threaded kernels (paper: FFT and RADIX from SPLASH-2, PageRank
/// from GAP): all threads run the same kernel over a shared footprint,
/// partitioned by thread.
///
/// # Panics
///
/// Panics if `kernel` is not one of `"fft"`, `"radix"`, `"pagerank"`.
pub fn multithreaded(kernel: &str, cores: usize, seed: u64) -> ThreadSet {
    let mut threads = Vec::with_capacity(cores);
    for t in 0..cores {
        let s = seed.wrapping_mul(3000).wrapping_add(t as u64);
        let source: Box<dyn TraceSource + Send> = match kernel {
            "fft" => Box::new(BlockedFft::new(1 << 18, t as u64)),
            "radix" => Box::new(RadixPartition::new(1 << 20, 256, s)),
            "pagerank" => Box::new(PageRankLike::new(1 << 20, s)),
            other => panic!("unknown multithreaded kernel {other}"),
        };
        threads.push(Thread::new(format!("{kernel}/{t}"), source));
    }
    ThreadSet {
        name: kernel.to_string(),
        threads,
    }
}

/// The attack mixes of Section VI-A: one attacker thread plus 15 benign
/// threads from `mix-high`; the attacker aims at channel 0 of whatever
/// hierarchy `mapping` describes.
///
/// `attack` selects the pattern:
/// * `"double"` — double-sided hammer;
/// * `"multi"` — 32-row multi-sided hammer;
/// * `"bh-adversarial"` — BlockHammer CBF-pollution pattern.
///
/// For the *profiled* CBF-collision pattern of Fig. 10(c) see
/// [`bh_cover_attack_mix`]; for the cross-channel interference scenario
/// see [`channel_interference_mix`].
///
/// # Panics
///
/// Panics if `attack` is unknown or `cores` is zero.
pub fn attack_mix(attack: &str, cores: usize, mapping: AddressMapping, seed: u64) -> ThreadSet {
    assert!(cores > 0, "cores must be non-zero");
    let mut set = mix_high(cores, seed);
    let ch0 = ChannelId(0);
    let attacker: (Box<dyn TraceSource + Send>, &'static str) = match attack {
        "double" => (
            Box::new(DoubleSided::new(mapping, ch0, 0, 1000)),
            "attack-double",
        ),
        "multi" => (
            Box::new(MultiSided::new(mapping, ch0, 0, 5000, 32)),
            "attack-multi",
        ),
        "bh-adversarial" => (
            Box::new(BlockHammerAdversarial::new(mapping, 128)),
            "attack-bh-adversarial",
        ),
        other => panic!("unknown attack {other}"),
    };
    set.threads[cores - 1] = Thread::new(attacker.1, attacker.0);
    set.name = match attack {
        "double" => "mix-high+double-sided",
        "multi" => "mix-high+multi-sided",
        _ => "mix-high+bh-adversarial",
    }
    .to_string();
    set
}

/// The *profiled* BlockHammer-adversarial mix of paper Fig. 10(c): the
/// attacker replicates BlockHammer's per-bank CBF hash functions, picks
/// benign-hot victim rows, and hammers rows that cover every CBF bucket of
/// each victim (see [`BlockHammer::collision_cover_rows`]). Benign threads
/// then get their hot rows blacklisted and throttled.
///
/// `victim_rows` are the rows to blacklist in each of the first
/// `victim_banks` banks (channel 0); `nbl_scale` must match the scale the
/// simulated BlockHammer instance runs with.
///
/// # Panics
///
/// Panics if `cores` is zero or `flip_th` has no BlockHammer config.
#[allow(clippy::too_many_arguments)]
pub fn bh_cover_attack_mix(
    cores: usize,
    mapping: AddressMapping,
    flip_th: u64,
    timing: &Ddr5Timing,
    victim_rows: &[u64],
    victim_banks: usize,
    seed: u64,
) -> ThreadSet {
    assert!(cores > 0, "cores must be non-zero");
    let cfg = BlockHammerConfig::for_flip_threshold(flip_th, timing);
    let rows_per_bank = mapping.geometry().rows_per_bank;
    let mut targets = Vec::new();
    for bank in 0..victim_banks.min(mapping.geometry().banks_total()) {
        for &victim in victim_rows {
            for r in BlockHammer::collision_cover_rows(&cfg, bank, victim, rows_per_bank) {
                targets.push((bank, r));
            }
        }
    }
    let mut set = mix_high(cores, seed);
    set.threads[cores - 1] = Thread::new(
        "attack-bh-cover",
        Box::new(RowAttack::new(mapping, ChannelId(0), targets, "bh-cover")),
    );
    set.name = "mix-high+bh-cover".to_string();
    set
}

/// Shifts a trace source's line addresses by a fixed offset, giving each
/// interference victim its own footprint ([`StreamSweep`]'s array bases
/// are stream-indexed, not seed-indexed, so identical sweeps on different
/// threads would otherwise alias in the shared LLC and starve the victim
/// channel of real traffic).
struct OffsetLines<S> {
    inner: S,
    offset_lines: u64,
}

impl<S: TraceSource> TraceSource for OffsetLines<S> {
    fn next_op(&mut self) -> TraceOp {
        let mut op = self.inner.next_op();
        op.line_addr = op.line_addr.wrapping_add(self.offset_lines);
        op
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// The cross-channel interference mix: a multi-sided hammer saturates
/// channel 0 while every benign thread streams on channel 1 (or, with more
/// than two channels, round-robins over the non-attacked channels). Under
/// a per-channel mitigation the victim channel's IPC and energy must stay
/// at baseline: RFM/ARR head-of-line blocking on the hammered channel
/// cannot cross the channel boundary.
///
/// # Panics
///
/// Panics if `cores` is zero or `mapping` has fewer than two channels.
pub fn channel_interference_mix(cores: usize, mapping: AddressMapping, seed: u64) -> ThreadSet {
    assert!(cores > 0, "cores must be non-zero");
    let channels = mapping.channels();
    assert!(
        channels >= 2,
        "channel interference needs at least two channels"
    );
    let mut threads = Vec::with_capacity(cores);
    for t in 0..cores - 1 {
        let s = seed.wrapping_mul(4000).wrapping_add(t as u64);
        let victim_channel = ChannelId(1 + t % (channels - 1));
        // Disjoint 8M-line (512 MB) footprints per victim so every thread
        // streams real DRAM traffic instead of hitting the LLC lines its
        // twin fetched.
        let sweep = OffsetLines {
            inner: StreamSweep::new(4, 1 << 20, s),
            offset_lines: (t as u64) * (8 << 20),
        };
        threads.push(Thread::new(
            format!("stream-victim/{t}@{victim_channel}"),
            Box::new(ChannelPinned::new(sweep, mapping, victim_channel)),
        ));
    }
    threads.push(Thread::new(
        "attack-multi@ch0",
        Box::new(MultiSided::new(mapping, ChannelId(0), 0, 5000, 32)),
    ));
    ThreadSet {
        name: "channel-interference".into(),
        threads,
    }
}

/// The noisy-neighbor mix — the multi-tenant QoS scenario: one hammering
/// tenant (a 32-row multi-sided hammer on channel 0) co-located with
/// `cores - 1` latency-sensitive victims that *share* the attacker's
/// channels (unlike [`channel_interference_mix`], whose victims are
/// pinned off the attacked channel). Victims alternate pointer-chasing
/// and random-access tenants on disjoint footprints, the
/// dependent-load profiles whose p99 read latency a cloud operator
/// watches; the attacker burns shared RFM/mitigation budget and bank
/// turnaround on the banks the victims also need. Reports for this mix
/// are read through the per-tenant `per_core` and `qos` sections.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn noisy_neighbor_mix(cores: usize, mapping: AddressMapping, seed: u64) -> ThreadSet {
    assert!(cores > 0, "cores must be non-zero");
    let mut threads = Vec::with_capacity(cores);
    for t in 0..cores - 1 {
        let s = seed.wrapping_mul(5000).wrapping_add(t as u64);
        // Disjoint 8M-line (512 MB) footprints per victim so tenants
        // don't serve each other's lines out of the shared LLC.
        let offset_lines = (t as u64) * (8 << 20);
        let source: Box<dyn TraceSource + Send> = if t % 2 == 0 {
            Box::new(OffsetLines {
                inner: PointerChase::new(1 << 20, s),
                offset_lines,
            })
        } else {
            Box::new(OffsetLines {
                inner: RandomAccess::new(1 << 21, s),
                offset_lines,
            })
        };
        threads.push(Thread::new(format!("tenant-victim/{t}"), source));
    }
    threads.push(Thread::new(
        "tenant-hammer",
        Box::new(MultiSided::new(mapping, ChannelId(0), 0, 5000, 32)),
    ));
    ThreadSet {
        name: "noisy-neighbor".into(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithril_dram::Geometry;

    #[test]
    fn mixes_have_requested_core_count() {
        assert_eq!(mix_high(16, 1).threads.len(), 16);
        assert_eq!(mix_blend(8, 1).threads.len(), 8);
        assert_eq!(multithreaded("fft", 4, 1).threads.len(), 4);
    }

    #[test]
    fn mixes_are_deterministic() {
        let mut a = mix_blend(4, 42);
        let mut b = mix_blend(4, 42);
        for t in 0..4 {
            for _ in 0..50 {
                assert_eq!(a.threads[t].next_op(), b.threads[t].next_op());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = mix_high(2, 1);
        let mut b = mix_high(2, 2);
        let ops_a: Vec<_> = (0..50).map(|_| a.threads[1].next_op().line_addr).collect();
        let ops_b: Vec<_> = (0..50).map(|_| b.threads[1].next_op().line_addr).collect();
        assert_ne!(ops_a, ops_b);
    }

    #[test]
    fn attack_mix_replaces_last_thread() {
        let m = AddressMapping::new(Geometry::table_iii_system());
        let mut set = attack_mix("double", 16, m, 7);
        assert_eq!(set.threads.len(), 16);
        assert_eq!(set.threads[15].name(), "attack-double");
        assert!(set.threads[15].next_op().uncacheable);
        assert!(!set.threads[0].next_op().uncacheable);
    }

    #[test]
    fn multithreaded_threads_share_kernel_space() {
        let mut set = multithreaded("pagerank", 4, 3);
        let tag0 = set.threads[0].next_op().line_addr >> 40;
        let tag1 = set.threads[1].next_op().line_addr >> 40;
        assert_eq!(tag0, tag1, "threads must share the kernel footprint");
    }

    #[test]
    fn bh_cover_mix_targets_cover_rows() {
        let m = AddressMapping::new(Geometry::table_iii_system());
        let t = Ddr5Timing::ddr5_4800();
        let mut set = bh_cover_attack_mix(4, m, 6_250, &t, &[0, 249], 4, 3);
        assert_eq!(set.threads[3].name(), "attack-bh-cover");
        let op = set.threads[3].next_op();
        assert!(op.uncacheable);
        assert_eq!(
            m.map_line(op.line_addr).channel,
            mithril_dram::ChannelId(0),
            "attacker stays on channel 0"
        );
    }

    #[test]
    fn channel_interference_separates_channels() {
        let m = AddressMapping::new(Geometry::table_iii_system());
        let mut set = channel_interference_mix(4, m, 5);
        assert_eq!(set.name, "channel-interference");
        assert_eq!(set.threads.len(), 4);
        // Attacker is the last thread, pinned to channel 0.
        let op = set.threads[3].next_op();
        assert!(op.uncacheable);
        assert_eq!(m.map_line(op.line_addr).channel, ChannelId(0));
        // Every benign thread stays off channel 0.
        for t in 0..3 {
            for _ in 0..64 {
                let op = set.threads[t].next_op();
                assert!(!op.uncacheable);
                assert_ne!(m.map_line(op.line_addr).channel, ChannelId(0));
            }
        }
    }

    #[test]
    fn noisy_neighbor_mix_shares_the_attacked_channel() {
        let m = AddressMapping::new(Geometry::table_iii_system());
        let mut set = noisy_neighbor_mix(4, m, 5);
        assert_eq!(set.name, "noisy-neighbor");
        assert_eq!(set.threads.len(), 4);
        assert_eq!(set.threads[3].name(), "tenant-hammer");
        let op = set.threads[3].next_op();
        assert!(op.uncacheable);
        assert_eq!(m.map_line(op.line_addr).channel, ChannelId(0));
        // Victims are cacheable tenants that do land on the attacked
        // channel too — co-location is the point of the scenario.
        let mut victim_on_ch0 = false;
        for t in 0..3 {
            for _ in 0..128 {
                let op = set.threads[t].next_op();
                assert!(!op.uncacheable);
                victim_on_ch0 |= m.map_line(op.line_addr).channel == ChannelId(0);
            }
        }
        assert!(victim_on_ch0, "victims must share channel 0");
    }

    #[test]
    fn noisy_neighbor_mix_is_deterministic() {
        let m = AddressMapping::new(Geometry::table_iii_system());
        let mut a = noisy_neighbor_mix(4, m, 42);
        let mut b = noisy_neighbor_mix(4, m, 42);
        for t in 0..4 {
            for _ in 0..50 {
                assert_eq!(a.threads[t].next_op(), b.threads[t].next_op());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two channels")]
    fn interference_needs_multi_channel() {
        let m = AddressMapping::new(Geometry::default());
        let _ = channel_interference_mix(4, m, 1);
    }

    #[test]
    #[should_panic(expected = "unknown attack")]
    fn unknown_attack_panics() {
        let m = AddressMapping::new(Geometry::default());
        let _ = attack_mix("nope", 4, m, 0);
    }

    #[test]
    #[should_panic(expected = "unknown multithreaded kernel")]
    fn unknown_kernel_panics() {
        let _ = multithreaded("nope", 4, 0);
    }
}
