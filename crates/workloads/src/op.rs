//! The trace operation format consumed by the system simulator.

/// One unit of a core's instruction trace: a batch of non-memory
/// instructions followed by one memory access.
///
/// # Example
///
/// ```
/// use mithril_workloads::TraceOp;
///
/// let op = TraceOp { non_mem_insts: 10, line_addr: 0x40, is_write: false, uncacheable: false };
/// assert_eq!(op.instructions(), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions retired before the access.
    pub non_mem_insts: u32,
    /// Cache-line address (byte address / 64).
    pub line_addr: u64,
    /// True for a store.
    pub is_write: bool,
    /// True to bypass the cache hierarchy (attacker flush+access
    /// patterns: every access reaches DRAM).
    pub uncacheable: bool,
}

impl TraceOp {
    /// Total instructions this op represents (the memory access counts
    /// as one instruction).
    pub fn instructions(&self) -> u64 {
        self.non_mem_insts as u64 + 1
    }

    /// A plain cacheable read.
    pub fn read(non_mem_insts: u32, line_addr: u64) -> Self {
        Self {
            non_mem_insts,
            line_addr,
            is_write: false,
            uncacheable: false,
        }
    }

    /// A plain cacheable write.
    pub fn write(non_mem_insts: u32, line_addr: u64) -> Self {
        Self {
            non_mem_insts,
            line_addr,
            is_write: true,
            uncacheable: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_count_includes_access() {
        assert_eq!(TraceOp::read(0, 1).instructions(), 1);
        assert_eq!(TraceOp::read(99, 1).instructions(), 100);
    }

    #[test]
    fn constructors_set_flags() {
        assert!(TraceOp::write(1, 2).is_write);
        assert!(!TraceOp::read(1, 2).is_write);
        assert!(!TraceOp::read(1, 2).uncacheable);
    }
}
