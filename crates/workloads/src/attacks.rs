//! Row Hammer attack and adversarial trace generators.
//!
//! Attack threads know the DRAM address mapping (real attackers
//! reverse-engineer it) and emit **uncacheable** accesses so every request
//! reaches DRAM — the flush+hammer pattern. Rows are chosen in *physical*
//! row coordinates via [`AddressMapping::line_for`].

use crate::op::TraceOp;
use crate::TraceSource;
use mithril_dram::RowId;
use mithril_memctrl::{AddressMapping, MappedAddr};

/// A generic row-list hammer: cycles through `(bank, row)` targets at
/// maximum rate.
///
/// Attacks are channel-aware: the system stripes cache lines over
/// `channels` memory channels (line → channel `line % channels`, per-
/// channel line `line / channels`), and a physical-row attack must invert
/// that routing too.
#[derive(Debug, Clone)]
pub struct RowAttack {
    mapping: AddressMapping,
    channels: u64,
    channel: u64,
    targets: Vec<MappedAddr>,
    cursor: usize,
    col_toggle: u64,
    name: &'static str,
}

impl RowAttack {
    /// Creates a hammer over explicit `(bank, row)` targets on one memory
    /// `channel` of a `channels`-channel system.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty, `channels` is zero or
    /// `channel >= channels`.
    pub fn new(
        mapping: AddressMapping,
        channels: usize,
        channel: usize,
        targets: Vec<(usize, RowId)>,
        name: &'static str,
    ) -> Self {
        assert!(!targets.is_empty(), "targets must be non-empty");
        assert!(channels > 0, "channels must be non-zero");
        assert!(channel < channels, "channel out of range");
        Self {
            targets: targets
                .into_iter()
                .map(|(bank, row)| MappedAddr { bank, row, col: 0 })
                .collect(),
            mapping,
            channels: channels as u64,
            channel: channel as u64,
            cursor: 0,
            col_toggle: 0,
            name,
        }
    }

    /// The attack's target list.
    pub fn targets(&self) -> impl Iterator<Item = (usize, RowId)> + '_ {
        self.targets.iter().map(|a| (a.bank, a.row))
    }
}

impl TraceSource for RowAttack {
    fn next_op(&mut self) -> TraceOp {
        let mut addr = self.targets[self.cursor];
        self.cursor = (self.cursor + 1) % self.targets.len();
        // Vary the column so request merging cannot collapse the stream.
        self.col_toggle = (self.col_toggle + 1) % self.mapping.geometry().lines_per_row();
        addr.col = self.col_toggle;
        TraceOp {
            non_mem_insts: 0,
            line_addr: self.mapping.line_for(addr) * self.channels + self.channel,
            is_write: false,
            uncacheable: true,
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// The classic double-sided attack: two aggressors sandwiching one victim.
#[derive(Debug, Clone)]
pub struct DoubleSided(RowAttack);

impl DoubleSided {
    /// Hammers rows `victim−1` and `victim+1` of `bank` on channel 0 of a
    /// `channels`-channel system.
    ///
    /// # Panics
    ///
    /// Panics if `victim` is 0 or `channels` is zero.
    pub fn new(mapping: AddressMapping, channels: usize, bank: usize, victim: RowId) -> Self {
        assert!(victim > 0, "victim must have two neighbours");
        Self(RowAttack::new(
            mapping,
            channels,
            0,
            vec![(bank, victim - 1), (bank, victim + 1)],
            "double-sided",
        ))
    }
}

impl TraceSource for DoubleSided {
    fn next_op(&mut self) -> TraceOp {
        self.0.next_op()
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// The many-sided (TRRespass/Half-Double style) attack of Section VI-A:
/// `sides` aggressor rows side by side, sandwiching `sides − 1` victims
/// (the paper uses 32 victims in total).
#[derive(Debug, Clone)]
pub struct MultiSided(RowAttack);

impl MultiSided {
    /// Hammers `sides` aggressors at rows `base, base+2, base+4, …` of
    /// `bank` on channel 0 of a `channels`-channel system.
    ///
    /// # Panics
    ///
    /// Panics if `sides` or `channels` is zero.
    pub fn new(
        mapping: AddressMapping,
        channels: usize,
        bank: usize,
        base: RowId,
        sides: usize,
    ) -> Self {
        assert!(sides > 0, "sides must be non-zero");
        let targets = (0..sides as u64).map(|i| (bank, base + 2 * i)).collect();
        Self(RowAttack::new(mapping, channels, 0, targets, "multi-sided"))
    }
}

impl TraceSource for MultiSided {
    fn next_op(&mut self) -> TraceOp {
        self.0.next_op()
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// The BlockHammer performance-adversarial pattern (paper Section VI-A and
/// Fig. 10(c)): the attacker never hammers hard enough to be a Row Hammer
/// threat; instead it activates many distinct rows just below the blacklist
/// threshold, polluting the counting-Bloom-filter buckets that benign rows
/// hash into. Benign memory-intensive threads then cross `NBL` through no
/// fault of their own and get throttled.
#[derive(Debug, Clone)]
pub struct BlockHammerAdversarial {
    mapping: AddressMapping,
    channels: u64,
    banks: usize,
    rows_per_bank: u64,
    /// Rows the attacker touches per bank (pollution set size).
    set_size: u64,
    cursor: u64,
}

impl BlockHammerAdversarial {
    /// Creates a pollution attack touching `set_size` rows per bank,
    /// spread over all `channels`.
    ///
    /// # Panics
    ///
    /// Panics if `set_size` or `channels` is zero.
    pub fn new(mapping: AddressMapping, channels: usize, set_size: u64) -> Self {
        assert!(set_size > 0, "set_size must be non-zero");
        assert!(channels > 0, "channels must be non-zero");
        let g = *mapping.geometry();
        Self {
            mapping,
            channels: channels as u64,
            banks: g.banks_total(),
            rows_per_bank: g.rows_per_bank,
            set_size,
            cursor: 0,
        }
    }
}

impl TraceSource for BlockHammerAdversarial {
    fn next_op(&mut self) -> TraceOp {
        // Stride through a wide, evenly spaced row set across all banks so
        // the pollution covers as many CBF buckets as possible.
        let i = self.cursor;
        self.cursor = self.cursor.wrapping_add(1);
        let bank = (i as usize) % self.banks;
        let slot = (i / self.banks as u64) % self.set_size;
        let row = (slot * (self.rows_per_bank / self.set_size).max(1)) % self.rows_per_bank;
        let line = self.mapping.line_for(MappedAddr { bank, row, col: (i / 7) % 128 });
        TraceOp {
            non_mem_insts: 0,
            line_addr: line * self.channels + i % self.channels,
            is_write: false,
            uncacheable: true,
        }
    }

    fn name(&self) -> &str {
        "blockhammer-adversarial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithril_dram::Geometry;

    fn mapping() -> AddressMapping {
        AddressMapping::new(Geometry::default())
    }

    #[test]
    fn double_sided_alternates_aggressors() {
        let mut a = DoubleSided::new(mapping(), 1, 3, 1000);
        let m = mapping();
        let r1 = m.map_line(a.next_op().line_addr);
        let r2 = m.map_line(a.next_op().line_addr);
        assert_eq!((r1.bank, r1.row), (3, 999));
        assert_eq!((r2.bank, r2.row), (3, 1001));
        // And repeats.
        let r3 = m.map_line(a.next_op().line_addr);
        assert_eq!(r3.row, 999);
    }

    #[test]
    fn attack_ops_are_uncacheable_reads() {
        let mut a = DoubleSided::new(mapping(), 1, 0, 10);
        let op = a.next_op();
        assert!(op.uncacheable);
        assert!(!op.is_write);
        assert_eq!(op.non_mem_insts, 0);
    }

    #[test]
    fn multi_sided_covers_32_aggressors() {
        let mut a = MultiSided::new(mapping(), 1, 1, 5000, 32);
        let m = mapping();
        let rows: Vec<u64> = (0..32).map(|_| m.map_line(a.next_op().line_addr).row).collect();
        assert_eq!(rows[0], 5000);
        assert_eq!(rows[31], 5000 + 62);
        assert!(rows.windows(2).all(|w| w[1] == w[0] + 2));
    }

    #[test]
    fn columns_vary_to_defeat_merging() {
        let mut a = DoubleSided::new(mapping(), 1, 0, 10);
        let m = mapping();
        let c1 = m.map_line(a.next_op().line_addr).col;
        let c2 = m.map_line(a.next_op().line_addr).col;
        let c3 = m.map_line(a.next_op().line_addr).col;
        assert!(c1 != c3 || c2 != c1);
    }

    #[test]
    fn adversarial_spreads_rows_and_banks() {
        let mut a = BlockHammerAdversarial::new(mapping(), 1, 64);
        let m = mapping();
        let mut banks = std::collections::HashSet::new();
        let mut rows = std::collections::HashSet::new();
        for _ in 0..32 * 64 {
            let addr = m.map_line(a.next_op().line_addr);
            banks.insert(addr.bank);
            rows.insert(addr.row);
        }
        assert_eq!(banks.len(), 32);
        assert!(rows.len() >= 64);
    }

    #[test]
    fn channel_routing_round_trips() {
        // On a 2-channel system, channel-0 attacks produce even line
        // addresses whose per-channel half maps back to the target.
        let mut a = DoubleSided::new(mapping(), 2, 3, 1000);
        let m = mapping();
        let op = a.next_op();
        assert_eq!(op.line_addr % 2, 0, "channel-0 lines are even");
        let back = m.map_line(op.line_addr / 2);
        assert_eq!((back.bank, back.row), (3, 999));
    }

    #[test]
    fn row_attack_targets_accessor() {
        let a = RowAttack::new(mapping(), 1, 0, vec![(0, 1), (1, 2)], "t");
        let t: Vec<_> = a.targets().collect();
        assert_eq!(t, vec![(0, 1), (1, 2)]);
    }
}
