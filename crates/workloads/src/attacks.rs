//! Row Hammer attack and adversarial trace generators.
//!
//! Attack threads know the DRAM address mapping (real attackers
//! reverse-engineer it) and emit **uncacheable** accesses so every request
//! reaches DRAM — the flush+hammer pattern. Rows are chosen in *physical*
//! coordinates — channel, bank, row — and inverted to line addresses via
//! [`AddressMapping::line_for`], so the same generator aims correctly on
//! any channel × rank × bank hierarchy.

use crate::op::TraceOp;
use crate::TraceSource;
use mithril_dram::{ChannelId, RowId};
use mithril_memctrl::{AddressMapping, MappedAddr};

/// A generic row-list hammer: cycles through `(bank, row)` targets of one
/// channel at maximum rate.
///
/// Attacks are channel-aware: the mapping routes cache lines over the
/// system's channels, and a physical-row attack inverts that routing so
/// every access lands on its chosen channel.
#[derive(Debug, Clone)]
pub struct RowAttack {
    mapping: AddressMapping,
    targets: Vec<MappedAddr>,
    cursor: usize,
    col_toggle: u64,
    name: &'static str,
}

impl RowAttack {
    /// Creates a hammer over explicit `(bank, row)` targets on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `channel` is out of range for the
    /// mapping's geometry.
    pub fn new(
        mapping: AddressMapping,
        channel: ChannelId,
        targets: Vec<(usize, RowId)>,
        name: &'static str,
    ) -> Self {
        assert!(!targets.is_empty(), "targets must be non-empty");
        assert!(channel.0 < mapping.channels(), "channel out of range");
        Self {
            targets: targets
                .into_iter()
                .map(|(bank, row)| MappedAddr {
                    channel,
                    bank,
                    row,
                    col: 0,
                })
                .collect(),
            mapping,
            cursor: 0,
            col_toggle: 0,
            name,
        }
    }

    /// The attack's target list.
    pub fn targets(&self) -> impl Iterator<Item = (usize, RowId)> + '_ {
        self.targets.iter().map(|a| (a.bank, a.row))
    }
}

impl TraceSource for RowAttack {
    fn next_op(&mut self) -> TraceOp {
        let mut addr = self.targets[self.cursor];
        self.cursor = (self.cursor + 1) % self.targets.len();
        // Vary the column so request merging cannot collapse the stream.
        self.col_toggle = (self.col_toggle + 1) % self.mapping.geometry().lines_per_row();
        addr.col = self.col_toggle;
        TraceOp {
            non_mem_insts: 0,
            line_addr: self.mapping.line_for(addr),
            is_write: false,
            uncacheable: true,
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// The classic double-sided attack: two aggressors sandwiching one victim.
#[derive(Debug, Clone)]
pub struct DoubleSided(RowAttack);

impl DoubleSided {
    /// Hammers rows `victim−1` and `victim+1` of `bank` on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `victim` is 0 or `channel` is out of range.
    pub fn new(mapping: AddressMapping, channel: ChannelId, bank: usize, victim: RowId) -> Self {
        assert!(victim > 0, "victim must have two neighbours");
        Self(RowAttack::new(
            mapping,
            channel,
            vec![(bank, victim - 1), (bank, victim + 1)],
            "double-sided",
        ))
    }
}

impl TraceSource for DoubleSided {
    fn next_op(&mut self) -> TraceOp {
        self.0.next_op()
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// The many-sided (TRRespass/Half-Double style) attack of Section VI-A:
/// `sides` aggressor rows side by side, sandwiching `sides − 1` victims
/// (the paper uses 32 victims in total).
#[derive(Debug, Clone)]
pub struct MultiSided(RowAttack);

impl MultiSided {
    /// Hammers `sides` aggressors at rows `base, base+2, base+4, …` of
    /// `bank` on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `sides` is zero or `channel` is out of range.
    pub fn new(
        mapping: AddressMapping,
        channel: ChannelId,
        bank: usize,
        base: RowId,
        sides: usize,
    ) -> Self {
        assert!(sides > 0, "sides must be non-zero");
        let targets = (0..sides as u64).map(|i| (bank, base + 2 * i)).collect();
        Self(RowAttack::new(mapping, channel, targets, "multi-sided"))
    }
}

impl TraceSource for MultiSided {
    fn next_op(&mut self) -> TraceOp {
        self.0.next_op()
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// The BlockHammer performance-adversarial pattern (paper Section VI-A and
/// Fig. 10(c)): the attacker never hammers hard enough to be a Row Hammer
/// threat; instead it activates many distinct rows just below the blacklist
/// threshold, polluting the counting-Bloom-filter buckets that benign rows
/// hash into. Benign memory-intensive threads then cross `NBL` through no
/// fault of their own and get throttled.
#[derive(Debug, Clone)]
pub struct BlockHammerAdversarial {
    mapping: AddressMapping,
    banks: usize,
    rows_per_bank: u64,
    /// Rows the attacker touches per bank (pollution set size).
    set_size: u64,
    cursor: u64,
}

impl BlockHammerAdversarial {
    /// Creates a pollution attack touching `set_size` rows per bank,
    /// spread over every channel of the mapping's geometry.
    ///
    /// # Panics
    ///
    /// Panics if `set_size` is zero.
    pub fn new(mapping: AddressMapping, set_size: u64) -> Self {
        assert!(set_size > 0, "set_size must be non-zero");
        let g = *mapping.geometry();
        Self {
            mapping,
            banks: g.banks_total(),
            rows_per_bank: g.rows_per_bank,
            set_size,
            cursor: 0,
        }
    }
}

impl TraceSource for BlockHammerAdversarial {
    fn next_op(&mut self) -> TraceOp {
        // Stride through a wide, evenly spaced row set across all channels
        // and banks so the pollution covers as many CBF buckets as
        // possible.
        let i = self.cursor;
        self.cursor = self.cursor.wrapping_add(1);
        let channel = ChannelId((i as usize) % self.mapping.channels());
        let bank = (i as usize / self.mapping.channels()) % self.banks;
        let slot = (i / (self.mapping.channels() * self.banks) as u64) % self.set_size;
        let row = (slot * (self.rows_per_bank / self.set_size).max(1)) % self.rows_per_bank;
        let line = self.mapping.line_for(MappedAddr {
            channel,
            bank,
            row,
            col: (i / 7) % 128,
        });
        TraceOp {
            non_mem_insts: 0,
            line_addr: line,
            is_write: false,
            uncacheable: true,
        }
    }

    fn name(&self) -> &str {
        "blockhammer-adversarial"
    }
}

/// Pins an arbitrary trace source to one memory channel.
///
/// The wrapped source's line addresses are re-interleaved so that every
/// access lands on `channel` while keeping the source's bank/row/column
/// structure within that channel. This is how the channel-interference mix
/// builds "streaming victim on channel B while the hammer runs on channel
/// A" scenarios.
///
/// # Example
///
/// ```
/// use mithril_dram::{ChannelId, Geometry};
/// use mithril_memctrl::AddressMapping;
/// use mithril_workloads::{ChannelPinned, StreamSweep, TraceSource};
///
/// let m = AddressMapping::new(Geometry::table_iii_system());
/// let mut pinned = ChannelPinned::new(StreamSweep::new(4, 1 << 20, 7), m, ChannelId(1));
/// for _ in 0..100 {
///     let op = pinned.next_op();
///     assert_eq!(m.map_line(op.line_addr).channel, ChannelId(1));
/// }
/// ```
pub struct ChannelPinned<S> {
    inner: S,
    mapping: AddressMapping,
    channel: ChannelId,
    name: String,
}

impl<S: TraceSource> ChannelPinned<S> {
    /// Pins `inner` to `channel` under `mapping`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range for the mapping's geometry.
    pub fn new(inner: S, mapping: AddressMapping, channel: ChannelId) -> Self {
        assert!(channel.0 < mapping.channels(), "channel out of range");
        let name = format!("{}@{channel}", inner.name());
        Self {
            inner,
            mapping,
            channel,
            name,
        }
    }
}

impl<S: TraceSource> TraceSource for ChannelPinned<S> {
    fn next_op(&mut self) -> TraceOp {
        let mut op = self.inner.next_op();
        // Interpret the inner line address as a per-channel line: spread it
        // into the full interleaving, then override the channel.
        let spread = op.line_addr.wrapping_mul(self.mapping.channels() as u64);
        let mut addr = self.mapping.map_line(spread);
        addr.channel = self.channel;
        op.line_addr = self.mapping.line_for(addr);
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithril_dram::Geometry;

    fn mapping() -> AddressMapping {
        AddressMapping::new(Geometry::default())
    }

    fn mapping2ch() -> AddressMapping {
        AddressMapping::new(Geometry::table_iii_system())
    }

    #[test]
    fn double_sided_alternates_aggressors() {
        let mut a = DoubleSided::new(mapping(), ChannelId(0), 3, 1000);
        let m = mapping();
        let r1 = m.map_line(a.next_op().line_addr);
        let r2 = m.map_line(a.next_op().line_addr);
        assert_eq!((r1.bank, r1.row), (3, 999));
        assert_eq!((r2.bank, r2.row), (3, 1001));
        // And repeats.
        let r3 = m.map_line(a.next_op().line_addr);
        assert_eq!(r3.row, 999);
    }

    #[test]
    fn attack_ops_are_uncacheable_reads() {
        let mut a = DoubleSided::new(mapping(), ChannelId(0), 0, 10);
        let op = a.next_op();
        assert!(op.uncacheable);
        assert!(!op.is_write);
        assert_eq!(op.non_mem_insts, 0);
    }

    #[test]
    fn multi_sided_covers_32_aggressors() {
        let mut a = MultiSided::new(mapping(), ChannelId(0), 1, 5000, 32);
        let m = mapping();
        let rows: Vec<u64> = (0..32)
            .map(|_| m.map_line(a.next_op().line_addr).row)
            .collect();
        assert_eq!(rows[0], 5000);
        assert_eq!(rows[31], 5000 + 62);
        assert!(rows.windows(2).all(|w| w[1] == w[0] + 2));
    }

    #[test]
    fn columns_vary_to_defeat_merging() {
        let mut a = DoubleSided::new(mapping(), ChannelId(0), 0, 10);
        let m = mapping();
        let c1 = m.map_line(a.next_op().line_addr).col;
        let c2 = m.map_line(a.next_op().line_addr).col;
        let c3 = m.map_line(a.next_op().line_addr).col;
        assert!(c1 != c3 || c2 != c1);
    }

    #[test]
    fn adversarial_spreads_rows_banks_and_channels() {
        let m = mapping2ch();
        let mut a = BlockHammerAdversarial::new(m, 64);
        let mut banks = std::collections::HashSet::new();
        let mut rows = std::collections::HashSet::new();
        let mut channels = std::collections::HashSet::new();
        for _ in 0..2 * 32 * 64 {
            let addr = m.map_line(a.next_op().line_addr);
            channels.insert(addr.channel);
            banks.insert(addr.bank);
            rows.insert(addr.row);
        }
        assert_eq!(channels.len(), 2);
        assert_eq!(banks.len(), 32);
        assert!(rows.len() >= 64);
    }

    #[test]
    fn attacks_stay_on_their_channel() {
        let m = mapping2ch();
        for channel in [ChannelId(0), ChannelId(1)] {
            let mut a = DoubleSided::new(m, channel, 3, 1000);
            for _ in 0..64 {
                let addr = m.map_line(a.next_op().line_addr);
                assert_eq!(addr.channel, channel, "attack strayed off {channel}");
                assert_eq!(addr.bank, 3);
            }
        }
    }

    #[test]
    fn channel_pinned_keeps_all_traffic_on_channel() {
        let m = mapping2ch();
        let mut pinned = ChannelPinned::new(
            crate::kernels::StreamSweep::new(4, 1 << 20, 9),
            m,
            ChannelId(1),
        );
        let mut rows = std::collections::HashSet::new();
        for _ in 0..4_096 {
            let op = pinned.next_op();
            let addr = m.map_line(op.line_addr);
            assert_eq!(addr.channel, ChannelId(1));
            rows.insert((addr.bank, addr.row));
        }
        assert!(rows.len() > 8, "pinning must preserve footprint diversity");
    }

    #[test]
    fn row_attack_targets_accessor() {
        let a = RowAttack::new(mapping(), ChannelId(0), vec![(0, 1), (1, 2)], "t");
        let t: Vec<_> = a.targets().collect();
        assert_eq!(t, vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "channel out of range")]
    fn out_of_range_channel_panics() {
        let _ = DoubleSided::new(mapping(), ChannelId(1), 0, 10);
    }
}
