//! Synthetic application kernels with controlled memory behaviour.
//!
//! Each kernel models the access structure of one of the paper's workload
//! classes (Section VI-A). Intensities (instructions per access) follow
//! SPEC-like ranges: memory-intensive kernels run a handful of instructions
//! per access, cache-friendly ones hundreds.

use crate::op::TraceOp;
use crate::TraceSource;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Large-object streaming sweep — the `lbm`-style pattern of paper Fig. 8.
///
/// `streams` software streams sweep disjoint large arrays sequentially and
/// in lock-step (reads with a write every few lines), concentrating
/// accesses on a small number of DRAM rows at any instant while covering
/// the whole footprint over time.
#[derive(Debug, Clone)]
pub struct StreamSweep {
    bases: Vec<u64>,
    offsets: Vec<u64>,
    footprint_lines: u64,
    cursor: usize,
    rng: SmallRng,
}

impl StreamSweep {
    /// Creates a sweep of `streams` arrays of `footprint_lines` lines each.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero or `footprint_lines` is zero.
    pub fn new(streams: usize, footprint_lines: u64, seed: u64) -> Self {
        assert!(streams > 0, "streams must be non-zero");
        assert!(footprint_lines > 0, "footprint_lines must be non-zero");
        Self {
            // Distinct 16 GiB regions, deliberately *not* row-aligned to
            // each other (offset by 499 rows per stream): concurrent
            // streams conflict in banks/rows like real heap arrays do.
            bases: (0..streams)
                .map(|s| ((s as u64 + 1) << 34) + (s as u64) * 499 * 4096)
                .collect(),
            offsets: vec![0; streams],
            footprint_lines,
            cursor: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TraceSource for StreamSweep {
    fn next_op(&mut self) -> TraceOp {
        let s = self.cursor;
        // Each stream advances 8 lines before the sweep moves on, so the
        // instantaneous working set is a few rows (Fig. 8(b)).
        let line = self.bases[s] + self.offsets[s];
        self.offsets[s] += 1;
        if self.offsets[s].is_multiple_of(8) {
            self.cursor = (self.cursor + 1) % self.bases.len();
        }
        if self.offsets[s] >= self.footprint_lines {
            self.offsets[s] = 0;
        }
        let is_write = self.offsets[s] % 4 == 3; // ~25% stores, lbm-like
        TraceOp {
            non_mem_insts: 12 + (self.rng.random::<u32>() % 8),
            line_addr: line,
            is_write,
            uncacheable: false,
        }
    }

    fn name(&self) -> &str {
        "stream-sweep"
    }
}

/// Uniform random accesses over a large footprint (GUPS-like, high MPKI).
#[derive(Debug, Clone)]
pub struct RandomAccess {
    base: u64,
    footprint_lines: u64,
    write_fraction: f64,
    rng: SmallRng,
}

impl RandomAccess {
    /// Creates a random-access kernel over `footprint_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_lines` is zero.
    pub fn new(footprint_lines: u64, seed: u64) -> Self {
        assert!(footprint_lines > 0, "footprint_lines must be non-zero");
        Self {
            base: 0xA << 40,
            footprint_lines,
            write_fraction: 0.3,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TraceSource for RandomAccess {
    fn next_op(&mut self) -> TraceOp {
        let line = self.base + self.rng.random::<u64>() % self.footprint_lines;
        TraceOp {
            non_mem_insts: 10 + (self.rng.random::<u32>() % 10),
            line_addr: line,
            is_write: self.rng.random::<f64>() < self.write_fraction,
            uncacheable: false,
        }
    }

    fn name(&self) -> &str {
        "random-access"
    }
}

/// Serialized pointer chasing: random lines with long dependent chains
/// (modelled as high per-access instruction counts so a single miss stalls
/// the window).
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    footprint_lines: u64,
    state: u64,
}

impl PointerChase {
    /// Creates a pointer chase over `footprint_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_lines` is zero.
    pub fn new(footprint_lines: u64, seed: u64) -> Self {
        assert!(footprint_lines > 0, "footprint_lines must be non-zero");
        Self {
            base: 0xB << 40,
            footprint_lines,
            state: seed | 1,
        }
    }
}

impl TraceSource for PointerChase {
    fn next_op(&mut self) -> TraceOp {
        // xorshift chain: the next address depends on the previous one.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        TraceOp {
            non_mem_insts: 24,
            line_addr: self.base + self.state % self.footprint_lines,
            is_write: false,
            uncacheable: false,
        }
    }

    fn name(&self) -> &str {
        "pointer-chase"
    }
}

/// Blocked FFT butterfly passes: per stage, pairs at power-of-two strides.
#[derive(Debug, Clone)]
pub struct BlockedFft {
    base: u64,
    n_lines: u64,
    stage: u32,
    index: u64,
    pair: bool,
    max_stage: u32,
}

impl BlockedFft {
    /// Creates an FFT over `n_lines` (rounded to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n_lines < 2`.
    pub fn new(n_lines: u64, seed: u64) -> Self {
        assert!(n_lines >= 2, "n_lines must be at least 2");
        let n = n_lines.next_power_of_two();
        Self {
            base: (0xC << 40) + (seed << 28),
            n_lines: n,
            stage: 0,
            index: 0,
            pair: false,
            max_stage: n.trailing_zeros(),
        }
    }
}

impl TraceSource for BlockedFft {
    fn next_op(&mut self) -> TraceOp {
        let stride = 1u64 << self.stage;
        let i = self.index;
        // Butterfly partner indices (i, i + stride).
        let addr = if self.pair {
            self.base + ((i + stride) % self.n_lines)
        } else {
            self.base + i
        };
        let op = TraceOp {
            non_mem_insts: 10,
            line_addr: addr,
            is_write: self.pair, // write back the second element
            uncacheable: false,
        };
        if self.pair {
            self.index += 1;
            if self.index.is_multiple_of(stride) {
                self.index += stride; // skip the partner half of the block
            }
            if self.index >= self.n_lines {
                self.index = 0;
                self.stage = (self.stage + 1) % self.max_stage.max(1);
            }
        }
        self.pair = !self.pair;
        op
    }

    fn name(&self) -> &str {
        "fft"
    }
}

/// Radix-sort partitioning: sequential source reads scattered into buckets.
#[derive(Debug, Clone)]
pub struct RadixPartition {
    src_base: u64,
    bucket_base: u64,
    n_lines: u64,
    buckets: u64,
    cursor: u64,
    bucket_cursor: Vec<u64>,
    rng: SmallRng,
    emit_write: Option<u64>,
}

impl RadixPartition {
    /// Creates a partitioning pass over `n_lines` source lines into
    /// `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `n_lines` or `buckets` is zero.
    pub fn new(n_lines: u64, buckets: u64, seed: u64) -> Self {
        assert!(n_lines > 0, "n_lines must be non-zero");
        assert!(buckets > 0, "buckets must be non-zero");
        Self {
            src_base: 0xD << 40,
            bucket_base: 0xE << 40,
            n_lines,
            buckets,
            cursor: 0,
            bucket_cursor: vec![0; buckets as usize],
            rng: SmallRng::seed_from_u64(seed),
            emit_write: None,
        }
    }
}

impl TraceSource for RadixPartition {
    fn next_op(&mut self) -> TraceOp {
        if let Some(addr) = self.emit_write.take() {
            return TraceOp {
                non_mem_insts: 4,
                line_addr: addr,
                is_write: true,
                uncacheable: false,
            };
        }
        let src = self.src_base + self.cursor;
        self.cursor = (self.cursor + 1) % self.n_lines;
        // The radix digit scatters the write pseudo-randomly per key.
        let b = (self.rng.random::<u64>()) % self.buckets;
        let slot = self.bucket_cursor[b as usize];
        self.bucket_cursor[b as usize] = slot + 1;
        let span = self.n_lines / self.buckets + 1;
        self.emit_write = Some(self.bucket_base + b * span + slot % span);
        TraceOp {
            non_mem_insts: 8,
            line_addr: src,
            is_write: false,
            uncacheable: false,
        }
    }

    fn name(&self) -> &str {
        "radix"
    }
}

/// PageRank-style graph traversal: power-law (Zipf-ish) vertex reads plus
/// sequential edge-list streaming.
#[derive(Debug, Clone)]
pub struct PageRankLike {
    vertex_base: u64,
    edge_base: u64,
    vertices: u64,
    edge_cursor: u64,
    edges: u64,
    rng: SmallRng,
    emit_vertex: bool,
}

impl PageRankLike {
    /// Creates a traversal over `vertices` vertex lines.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero.
    pub fn new(vertices: u64, seed: u64) -> Self {
        assert!(vertices > 0, "vertices must be non-zero");
        Self {
            vertex_base: 0xF << 40,
            edge_base: 0x10 << 40,
            vertices,
            edge_cursor: 0,
            edges: vertices * 8,
            rng: SmallRng::seed_from_u64(seed),
            emit_vertex: false,
        }
    }

    /// Approximate Zipf sample over `[0, n)` via inverse-power transform.
    fn zipf(&mut self, n: u64) -> u64 {
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        // Exponent ~0.8: heavy head, long tail.
        let x = (u.powf(-0.8) - 1.0) / (1e4f64.powf(0.8) - 1.0).max(1e-12);
        ((x * n as f64) as u64).min(n - 1)
    }
}

impl TraceSource for PageRankLike {
    fn next_op(&mut self) -> TraceOp {
        if self.emit_vertex {
            self.emit_vertex = false;
            let v = self.zipf(self.vertices);
            TraceOp {
                non_mem_insts: 9,
                line_addr: self.vertex_base + v,
                is_write: false,
                uncacheable: false,
            }
        } else {
            self.emit_vertex = true;
            let e = self.edge_cursor;
            self.edge_cursor = (self.edge_cursor + 1) % self.edges;
            TraceOp {
                non_mem_insts: 6,
                line_addr: self.edge_base + e,
                is_write: false,
                uncacheable: false,
            }
        }
    }

    fn name(&self) -> &str {
        "pagerank"
    }
}

/// A mostly cache-resident workload: small hot footprint, high instruction
/// count per access (the "randomly selected" non-intensive SPEC traces of
/// mix-blend).
#[derive(Debug, Clone)]
pub struct CacheResident {
    base: u64,
    hot_lines: u64,
    cold_lines: u64,
    rng: SmallRng,
}

impl CacheResident {
    /// Creates a kernel whose hot set is `hot_lines` lines with occasional
    /// excursions into `cold_lines`.
    ///
    /// # Panics
    ///
    /// Panics if `hot_lines` or `cold_lines` is zero.
    pub fn new(hot_lines: u64, cold_lines: u64, seed: u64) -> Self {
        assert!(
            hot_lines > 0 && cold_lines > 0,
            "line counts must be non-zero"
        );
        Self {
            base: 0x11 << 40,
            hot_lines,
            cold_lines,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TraceSource for CacheResident {
    fn next_op(&mut self) -> TraceOp {
        let cold = self.rng.random::<f64>() < 0.02;
        let line = if cold {
            self.base + self.hot_lines + self.rng.random::<u64>() % self.cold_lines
        } else {
            self.base + self.rng.random::<u64>() % self.hot_lines
        };
        TraceOp {
            non_mem_insts: 80 + (self.rng.random::<u32>() % 160),
            line_addr: line,
            is_write: self.rng.random::<f64>() < 0.2,
            uncacheable: false,
        }
    }

    fn name(&self) -> &str {
        "cache-resident"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn take(src: &mut dyn TraceSource, n: usize) -> Vec<TraceOp> {
        (0..n).map(|_| src.next_op()).collect()
    }

    #[test]
    fn sweep_is_sequential_within_streams() {
        let mut s = StreamSweep::new(2, 1 << 16, 1);
        let ops = take(&mut s, 64);
        let sequential = ops
            .windows(2)
            .filter(|w| w[1].line_addr == w[0].line_addr + 1)
            .count();
        assert!(sequential > 40, "sequential pairs = {sequential}");
    }

    #[test]
    fn sweep_wraps_at_footprint() {
        let mut s = StreamSweep::new(1, 16, 1);
        let ops = take(&mut s, 64);
        assert!(ops.iter().all(|o| o.line_addr - (1 << 34) < 16));
    }

    #[test]
    fn random_access_covers_footprint() {
        let mut r = RandomAccess::new(1024, 2);
        let ops = take(&mut r, 4000);
        let unique: HashSet<u64> = ops.iter().map(|o| o.line_addr).collect();
        assert!(unique.len() > 800, "covered {} lines", unique.len());
    }

    #[test]
    fn pointer_chase_is_deterministic() {
        let mut a = PointerChase::new(4096, 9);
        let mut b = PointerChase::new(4096, 9);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn fft_produces_strided_pairs() {
        let mut f = BlockedFft::new(1 << 12, 0);
        // Skip to stage 1+ by consuming stage 0.
        let ops = take(&mut f, 4 * (1 << 12));
        // Pairs alternate read (even slots) / write (odd slots).
        assert!(ops[0].line_addr != ops[1].line_addr);
        assert!(!ops[0].is_write && ops[1].is_write);
    }

    #[test]
    fn radix_alternates_read_scatter_write() {
        let mut r = RadixPartition::new(1 << 14, 64, 3);
        let ops = take(&mut r, 100);
        for pair in ops.chunks(2) {
            assert!(!pair[0].is_write);
            assert!(pair[1].is_write);
        }
    }

    #[test]
    fn pagerank_head_is_hot() {
        let mut p = PageRankLike::new(1 << 16, 4);
        let ops = take(&mut p, 20_000);
        let vertex_ops: Vec<u64> = ops
            .iter()
            .filter(|o| o.line_addr >= 0xF << 40 && o.line_addr < 0x10 << 40)
            .map(|o| o.line_addr - (0xF << 40))
            .collect();
        assert!(!vertex_ops.is_empty());
        let head_hits = vertex_ops.iter().filter(|&&v| v < (1 << 16) / 100).count();
        assert!(
            head_hits as f64 / vertex_ops.len() as f64 > 0.2,
            "power-law head too cold: {head_hits}/{}",
            vertex_ops.len()
        );
    }

    #[test]
    fn cache_resident_is_low_intensity() {
        let mut c = CacheResident::new(1 << 12, 1 << 20, 5);
        let ops = take(&mut c, 1000);
        let avg: f64 = ops.iter().map(|o| o.non_mem_insts as f64).sum::<f64>() / ops.len() as f64;
        assert!(avg > 60.0, "avg inter-access instructions = {avg}");
    }

    #[test]
    fn kernels_use_disjoint_address_spaces() {
        let mut srcs: Vec<Box<dyn TraceSource>> = vec![
            Box::new(StreamSweep::new(2, 1024, 0)),
            Box::new(RandomAccess::new(1024, 0)),
            Box::new(PointerChase::new(1024, 0)),
            Box::new(RadixPartition::new(1024, 8, 0)),
            Box::new(PageRankLike::new(1024, 0)),
            Box::new(CacheResident::new(256, 1024, 0)),
        ];
        let mut spaces: Vec<HashSet<u64>> = Vec::new();
        for s in srcs.iter_mut() {
            let tags: HashSet<u64> = (0..200).map(|_| s.next_op().line_addr >> 40).collect();
            spaces.push(tags);
        }
        for i in 0..spaces.len() {
            for j in i + 1..spaces.len() {
                assert!(
                    spaces[i].is_disjoint(&spaces[j]),
                    "kernels {i} and {j} share address space"
                );
            }
        }
    }
}
