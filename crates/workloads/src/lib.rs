//! Deterministic synthetic workload and attack-trace generators.
//!
//! The paper evaluates with SPEC CPU2017 SimPoint traces (mix-high and
//! mix-blend), SPLASH-2 FFT/RADIX, GAP PageRank, plus Row Hammer attack
//! patterns and a BlockHammer performance-adversarial pattern
//! (Section VI-A). Those traces are not redistributable, so this crate
//! synthesizes generators with the access properties the paper's mechanisms
//! are sensitive to:
//!
//! * **memory intensity** (instructions per memory access),
//! * **row locality** (streaming sweeps keep a row open; paper Fig. 8's
//!   large-object sweep of `lbm` is modelled by [`StreamSweep`]),
//! * **footprint and reuse** (cache-resident vs DRAM-resident),
//! * **attack structure** (double-sided pairs, 32-row multi-sided
//!   TRRespass-style patterns, CBF-pollution for the BlockHammer
//!   adversarial experiment).
//!
//! Every generator is an infinite, seeded iterator of [`TraceOp`]s — runs
//! are bit-for-bit reproducible.
//!
//! # Example
//!
//! ```
//! use mithril_workloads::{StreamSweep, TraceOp, TraceSource};
//!
//! let mut sweep = StreamSweep::new(4, 1 << 20, 7);
//! let ops: Vec<TraceOp> = (0..1000).map(|_| sweep.next_op()).collect();
//! // Sequential sweeps revisit consecutive lines: high spatial locality.
//! assert!(ops.windows(2).filter(|w| w[1].line_addr == w[0].line_addr + 1).count() > 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attacks;
mod kernels;
mod mixes;
mod op;

pub use attacks::{BlockHammerAdversarial, ChannelPinned, DoubleSided, MultiSided, RowAttack};
pub use kernels::{
    BlockedFft, CacheResident, PageRankLike, PointerChase, RadixPartition, RandomAccess,
    StreamSweep,
};
pub use mixes::{
    attack_mix, bh_cover_attack_mix, channel_interference_mix, mix_blend, mix_high, multithreaded,
    noisy_neighbor_mix, Thread, ThreadSet,
};
pub use op::TraceOp;

/// Anything that produces an infinite instruction/memory trace.
pub trait TraceSource {
    /// The next trace operation. Generators never terminate.
    fn next_op(&mut self) -> TraceOp;

    /// A short name for reporting.
    fn name(&self) -> &str;
}
