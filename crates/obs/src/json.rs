//! A minimal, dependency-free JSON reader for the workspace's own report
//! dialect.
//!
//! Every report in this repository is *written* by hand-rendered,
//! deterministic emitters; this module is the matching *reader* so
//! analysis tools (`obs report`) can ingest them without pulling a JSON
//! dependency into the workspace. It is a plain recursive-descent parser
//! over the full JSON grammar — objects keep their field order (reports
//! have fixed field order, and diffs read better that way), numbers are
//! held as `f64` (report magnitudes stay well inside the exact integer
//! range), and duplicate keys resolve to the first occurrence.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source field order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Member `key` of an object (first occurrence), if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members in source order, if an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in our own reports;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character; `pos` only ever stops
                    // on ASCII structure bytes, so it is a char boundary.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_report_dialect() {
        let doc = r#"{
  "format_version": 2,
  "base_seed": 42,
  "scenarios": [
    {"name":"a","metrics":{"aggregate_ipc":1.25,"flips":0}},
    {"name":"b","error":"no \"config\""}
  ]
}
"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("format_version").unwrap().as_u64(), Some(2));
        let scenarios = v.get("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(
            scenarios[0]
                .get("metrics")
                .unwrap()
                .get("aggregate_ipc")
                .unwrap()
                .as_f64(),
            Some(1.25)
        );
        assert_eq!(
            scenarios[1].get("error").unwrap().as_str(),
            Some("no \"config\"")
        );
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn numbers_and_literals() {
        assert_eq!(Json::parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("1e999").unwrap().as_u64(), None);
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn escapes_decode() {
        let v = Json::parse(r#""a\n\tA\\""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\tA\\"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
