//! Deterministic observability: structured event sinks and cycle-domain
//! time-series probes.
//!
//! The simulator's aggregate reports (`Metrics`/`McStats`/`FaultStats`)
//! say *what* happened over a whole run; this crate records *when*. Two
//! complementary instruments share one design rule — everything is keyed
//! to simulated time, never host time, so output is bit-identical at any
//! worker-thread count:
//!
//! * **Events** ([`Event`] + [`EventSink`]): typed, timestamped records of
//!   the individual commands and state transitions the stack takes — ACT,
//!   REF, RFM (with the greedy selection it triggered), ARR, table
//!   evictions/invalidations, fault injection/detection/repair,
//!   scheduler-lane invalidations by cause, BLISS blacklist clears.
//!   Instrumented code is generic over the sink and guards every emission
//!   with `if S::ENABLED { ... }`; with the [`NullSink`] (the default) the
//!   constant is `false`, the branch is monomorphized away, and the hot
//!   path compiles to exactly the un-instrumented code. [`RingSink`] is
//!   the real collector: a bounded ring that keeps the most recent events,
//!   counts what it had to drop, and keeps *exact* per-kind totals even
//!   when the ring wraps (so count baselines are capacity-independent).
//!
//! * **Samples** ([`Sampler`] + [`SampleRow`]): a time series on a fixed
//!   cycle grid. Every `interval_cycles` memory cycles the probe snapshots
//!   tracker occupancy and counter span (via the [`Observe`] hook),
//!   RFM/ACT/REF totals, per-bank ACT pressure, queue depth, LLC hit
//!   counters and the event core's candidate-cache counters. Rows are
//!   stamped with the *scheduled* grid cycle (`k * interval_cycles`), and
//!   a catch-up loop emits one row per missed grid point, so the grid —
//!   not the cadence of simulator progress — defines the series.
//!
//! This crate is dependency-free and sits below every other crate in the
//! workspace; `dram`, `core`, `trackers`, `faults`, `memctrl`, `sim` and
//! the runner all hook into it.
//!
//! # Example
//!
//! Collect events into a bounded ring and latencies into the
//! integer-only histogram every controller carries:
//!
//! ```
//! use mithril_obs::{Event, EventSink, LatencyHistogram, RingSink};
//!
//! let mut sink = RingSink::new(8);
//! for t in 0..20u64 {
//!     sink.emit(t * 1_000, Event::Act { bank: 0, row: t });
//! }
//! // The ring kept the newest 8 events but the per-kind totals are exact.
//! assert_eq!(sink.take_events().len(), 8);
//! assert_eq!(sink.counts()[Event::Act { bank: 0, row: 0 }.kind_index()], 20);
//!
//! let mut h = LatencyHistogram::new();
//! h.record(40_000);
//! h.record(90_000);
//! assert_eq!(h.count(), 2);
//! assert!(h.p99() <= h.max());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

/// Version stamp carried by every emitted JSON report (sweep, metrics-only
/// replay, fault campaign, perf report, obs summaries). Bump when a report
/// schema changes shape; diff-based gates validate it before comparing.
///
/// History: 1 = original report dialect; 2 = added `latency`/`per_core`
/// sections to metrics and `warnings` arrays to the obs summaries.
pub const FORMAT_VERSION: u64 = 2;

/// DDR5-4800 command-clock period in picoseconds (2400 MHz), the default
/// cycle unit of the sample grid. `Ddr5Timing` expresses everything in
/// picoseconds; this is the conversion the cycle domain is defined by.
pub const DEFAULT_CYCLE_PS: u64 = 416;

/// Checks that `json` carries this crate's [`FORMAT_VERSION`] stamp.
/// Used by tests and CI gates before byte-diffing two reports, so a
/// schema drift fails with a version message instead of a wall of diff.
pub fn validate_format_version(json: &str) -> Result<(), String> {
    let want = format!("\"format_version\": {FORMAT_VERSION}");
    if json.contains(&want) {
        Ok(())
    } else {
        Err(format!(
            "report is missing the `{want}` stamp (schema drift or pre-versioned report)"
        ))
    }
}

/// Renders a warning list as the inner text of a JSON array: empty for no
/// warnings, otherwise `"w1", "w2", ...`. Shared by the obs summary and
/// the runner's `obs_counts.json` writer so both surface ring drops the
/// same way.
pub fn warnings_json(warnings: &[String]) -> String {
    let quoted: Vec<String> = warnings
        .iter()
        .map(|w| format!("\"{}\"", w.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    quoted.join(", ")
}

// ------------------------------------------------------------ histograms

/// Linear sub-buckets per power-of-two range: values within one octave
/// land in one of `2^SUB_BITS` equal-width slots, bounding the relative
/// quantization error of any recorded value to `2^-SUB_BITS` (6.25%).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count of [`LatencyHistogram`]: 16 exact unit buckets for
/// values below `SUB`, then 16 linear sub-buckets per octave up to the
/// top bit of `u64` (octaves 4..=63 → 60 × 16), inclusive.
pub const HISTOGRAM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A deterministic HDR-style latency histogram: power-of-two buckets with
/// [`SUB`](HISTOGRAM_BUCKETS) linear sub-buckets each, plus exact
/// count/sum/min/max side counters.
///
/// Everything is integer arithmetic — recording, merging and percentile
/// extraction involve no floats — so merging per-channel histograms in
/// any order and extracting percentiles yields bit-identical results at
/// any worker-thread count. Percentiles return the **lower bound** of the
/// bucket containing the requested rank (relative error ≤ 1/16); the mean
/// is exact because the sum is kept exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket counts; empty until the first record (all-zero shape).
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Index of the bucket holding `v`. Values below `SUB` get exact unit
/// buckets; above, the top `SUB_BITS` bits after the leading one select
/// the linear sub-bucket within the value's octave. Monotone in `v` and
/// continuous at the linear/log boundary (`index(v) == v` for `v < 2·SUB`).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = (v >> (msb - SUB_BITS)) as usize - SUB;
        SUB + (msb - SUB_BITS) as usize * SUB + sub
    }
}

/// Smallest value that maps to bucket `idx` — the value percentile
/// extraction reports for ranks landing in that bucket.
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let k = (idx - SUB) >> SUB_BITS;
        let sub = (idx - SUB) & (SUB - 1);
        ((SUB + sub) as u64) << k
    }
}

impl LatencyHistogram {
    /// An empty histogram (no allocations until the first record).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (a latency in picoseconds).
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; HISTOGRAM_BUCKETS];
        }
        self.counts[bucket_index(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact mean of recorded values (0.0 when empty). Unlike the
    /// percentiles this does not quantize: the sum is exact.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` bucket-wise. Associative and commutative
    /// (all integer adds/min/max), so any merge tree over the same
    /// histograms produces the same result — the roll-up determinism the
    /// report writers rely on.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; HISTOGRAM_BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Lower bound of the bucket containing rank `ceil(count·num/den)`
    /// (1-based), i.e. the `num/den` quantile quantized down to its bucket
    /// boundary. Integer-only; 0 when empty.
    pub fn quantile_lower_bound(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as u128 * num as u128).div_ceil(den as u128) as u64).max(1);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_lower_bound(idx);
            }
        }
        self.max
    }

    /// Median (bucket lower bound).
    pub fn p50(&self) -> u64 {
        self.quantile_lower_bound(50, 100)
    }

    /// 95th percentile (bucket lower bound).
    pub fn p95(&self) -> u64 {
        self.quantile_lower_bound(95, 100)
    }

    /// 99th percentile (bucket lower bound).
    pub fn p99(&self) -> u64 {
        self.quantile_lower_bound(99, 100)
    }

    /// 99.9th percentile (bucket lower bound).
    pub fn p999(&self) -> u64 {
        self.quantile_lower_bound(999, 1000)
    }

    /// Renders the summary the reports embed: exact counters plus the
    /// standard percentile ladder, all in picoseconds. Field order is
    /// fixed and every value is an integer, so two equal histograms render
    /// to identical bytes.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum_ps\":{},\"min_ps\":{},\"max_ps\":{},\"p50_ps\":{},\
             \"p95_ps\":{},\"p99_ps\":{},\"p999_ps\":{}}}",
            self.count,
            self.sum,
            self.min(),
            self.max(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.p999()
        )
    }
}

/// Grow-on-demand per-core attribution vector: `slot(core)` resizes with
/// `T::default()` so instrumented code never bounds-checks against a core
/// count it does not know. Index-wise merging keeps roll-ups
/// order-independent when each entry's fold is.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerCore<T> {
    slots: Vec<T>,
}

impl<T> PerCore<T> {
    /// An empty attribution vector.
    pub fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// Number of slots materialized so far (highest touched core + 1).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no core has been attributed anything yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The entry for `core`, if that slot was ever materialized.
    pub fn get(&self, core: usize) -> Option<&T> {
        self.slots.get(core)
    }

    /// Iterates `(core, entry)` pairs in core order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate()
    }
}

impl<T: Default> PerCore<T> {
    /// The entry for `core`, materializing default slots up to it.
    pub fn slot(&mut self, core: usize) -> &mut T {
        if core >= self.slots.len() {
            self.slots.resize_with(core + 1, T::default);
        }
        &mut self.slots[core]
    }

    /// Folds `other` into `self` index-wise with `fold`, growing to the
    /// longer of the two.
    pub fn merge_by(&mut self, other: &PerCore<T>, mut fold: impl FnMut(&mut T, &T)) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize_with(other.slots.len(), T::default);
        }
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            fold(a, b);
        }
    }
}

// ---------------------------------------------------------------- events

/// Why the event-driven controller core invalidated a per-bank scheduler
/// lane (forcing a candidate recompute). Mirrors the invalidation rules
/// in ARCHITECTURE.md's event-core section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneCause {
    /// A new request was enqueued onto the bank.
    Enqueue,
    /// A command executed on the bank (its own lane state changed).
    Execute,
    /// The bank became the target of a queued ARR.
    ArrTarget,
    /// A rank-segment auto-refresh touched the bank.
    RefSegment,
    /// The BLISS blacklist changed, reordering every lane's priorities.
    BlissChange,
    /// Throttling is active: per-cycle fallback marks all lanes dirty.
    Throttle,
}

impl LaneCause {
    /// Stable lower-snake name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            LaneCause::Enqueue => "enqueue",
            LaneCause::Execute => "execute",
            LaneCause::ArrTarget => "arr_target",
            LaneCause::RefSegment => "ref_segment",
            LaneCause::BlissChange => "bliss_change",
            LaneCause::Throttle => "throttle",
        }
    }
}

/// One structured, typed observability event. Timestamps ride separately
/// (see [`EventSink::emit`]); payloads are the minimal coordinates needed
/// to interpret the transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An ACT was issued to `bank` for `row`.
    Act {
        /// Flat bank index within the channel.
        bank: u32,
        /// Activated row.
        row: u64,
    },
    /// A rank auto-refresh covered `banks` banks of `rank`.
    Ref {
        /// Refreshed rank.
        rank: u32,
        /// Number of banks the refresh segment covered.
        banks: u32,
    },
    /// An RFM was issued: the engine greedily selected `aggressor`
    /// (absent when the table was empty or the tag was invalid) and
    /// refreshed `victims` rows; `skipped` marks adaptive-refresh skips.
    Rfm {
        /// Flat bank index within the channel.
        bank: u32,
        /// Greedily selected aggressor row, if any.
        aggressor: Option<u64>,
        /// Victim rows refreshed.
        victims: u32,
        /// `true` when adaptive refresh skipped the window.
        skipped: bool,
    },
    /// A Mithril+ MRR round found no pending refresh; the RFM cadence
    /// slot was elided entirely.
    RfmElided {
        /// Flat bank index within the channel.
        bank: u32,
    },
    /// An ARR (targeted victim refresh) retired for `bank`.
    Arr {
        /// Flat bank index within the channel.
        bank: u32,
        /// Victim rows refreshed.
        victims: u32,
    },
    /// A mitigation engine asked the controller to act (queued an ARR
    /// with `victims` victim rows) in response to an ACT.
    MitigationTrigger {
        /// Flat bank index within the channel.
        bank: u32,
        /// Victim rows the queued ARR will refresh.
        victims: u32,
    },
    /// The bank's tracker evicted `evictions` minimum entries since the
    /// previous ACT (Space-Saving replacement pressure).
    TableEvict {
        /// Flat bank index within the channel.
        bank: u32,
        /// Minimum-entry evictions since the previous ACT.
        evictions: u64,
    },
    /// The bank's tracker has `invalidations` tag-invalidated entries
    /// (CAM upsets) outstanding.
    TableInvalidate {
        /// Flat bank index within the channel.
        bank: u32,
        /// Outstanding tag-invalidated entries.
        invalidations: u64,
    },
    /// The fault plan landed `count` new faults on `bank`'s engine.
    FaultInject {
        /// Flat bank index within the channel.
        bank: u32,
        /// Faults injected by this draw.
        count: u64,
    },
    /// A scrub pass detected `count` new corruptions on `bank`.
    FaultDetect {
        /// Flat bank index within the channel.
        bank: u32,
        /// Newly detected corruptions.
        count: u64,
    },
    /// A scrub pass repaired `bank`'s tracker `count` times.
    FaultRepair {
        /// Flat bank index within the channel.
        bank: u32,
        /// Repairs performed.
        count: u64,
    },
    /// The event core invalidated `bank`'s scheduler lane.
    LaneInvalidate {
        /// Flat bank index within the channel.
        bank: u32,
        /// What dirtied the lane.
        cause: LaneCause,
    },
    /// BLISS cleared its blacklist (interval rollover or served-streak
    /// change forcing a full candidate refresh).
    BlissClear,
}

/// Number of event kinds (the length of [`KIND_NAMES`]).
pub const KINDS: usize = 13;

/// Stable lower-snake names of the event kinds, indexed by
/// [`Event::kind_index`]. Order is append-only: new kinds go at the end
/// so committed count baselines stay comparable.
pub const KIND_NAMES: [&str; KINDS] = [
    "act",
    "ref",
    "rfm",
    "rfm_elided",
    "arr",
    "mitigation_trigger",
    "table_evict",
    "table_invalidate",
    "fault_inject",
    "fault_detect",
    "fault_repair",
    "lane_invalidate",
    "bliss_clear",
];

impl Event {
    /// Index of this event's kind into [`KIND_NAMES`].
    pub fn kind_index(&self) -> usize {
        match self {
            Event::Act { .. } => 0,
            Event::Ref { .. } => 1,
            Event::Rfm { .. } => 2,
            Event::RfmElided { .. } => 3,
            Event::Arr { .. } => 4,
            Event::MitigationTrigger { .. } => 5,
            Event::TableEvict { .. } => 6,
            Event::TableInvalidate { .. } => 7,
            Event::FaultInject { .. } => 8,
            Event::FaultDetect { .. } => 9,
            Event::FaultRepair { .. } => 10,
            Event::LaneInvalidate { .. } => 11,
            Event::BlissClear => 12,
        }
    }

    /// Stable name of this event's kind.
    pub fn kind_name(&self) -> &'static str {
        KIND_NAMES[self.kind_index()]
    }

    /// Renders the kind-specific payload fields as JSON object members
    /// (no braces), e.g. `"bank":3,"row":55`. Empty for payload-free
    /// kinds.
    pub fn payload_json(&self) -> String {
        match *self {
            Event::Act { bank, row } => format!("\"bank\":{bank},\"row\":{row}"),
            Event::Ref { rank, banks } => format!("\"rank\":{rank},\"banks\":{banks}"),
            Event::Rfm {
                bank,
                aggressor,
                victims,
                skipped,
            } => {
                let agg = match aggressor {
                    Some(a) => a.to_string(),
                    None => "null".to_string(),
                };
                format!("\"bank\":{bank},\"aggressor\":{agg},\"victims\":{victims},\"skipped\":{skipped}")
            }
            Event::RfmElided { bank } => format!("\"bank\":{bank}"),
            Event::Arr { bank, victims } => format!("\"bank\":{bank},\"victims\":{victims}"),
            Event::MitigationTrigger { bank, victims } => {
                format!("\"bank\":{bank},\"victims\":{victims}")
            }
            Event::TableEvict { bank, evictions } => {
                format!("\"bank\":{bank},\"evictions\":{evictions}")
            }
            Event::TableInvalidate {
                bank,
                invalidations,
            } => format!("\"bank\":{bank},\"invalidations\":{invalidations}"),
            Event::FaultInject { bank, count }
            | Event::FaultDetect { bank, count }
            | Event::FaultRepair { bank, count } => format!("\"bank\":{bank},\"count\":{count}"),
            Event::LaneInvalidate { bank, cause } => {
                format!("\"bank\":{bank},\"cause\":\"{}\"", cause.name())
            }
            Event::BlissClear => String::new(),
        }
    }
}

/// Where instrumented code sends its events.
///
/// The contract that makes observability free when unused: callers are
/// generic over `S: EventSink` and guard every emission (and any payload
/// construction) with `if S::ENABLED { ... }`. [`NullSink`] sets the
/// constant to `false`, so monomorphization deletes the branch and the
/// obs-off binary is instruction-identical to un-instrumented code.
pub trait EventSink {
    /// Compile-time switch: `false` means `emit` is unreachable and all
    /// guarded instrumentation folds away.
    const ENABLED: bool;

    /// Records `ev` at simulated time `at` (picoseconds).
    fn emit(&mut self, at: u64, ev: Event);
}

/// The disabled sink: observability compiled out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _at: u64, _ev: Event) {}
}

/// A bounded ring-buffer sink with drop accounting.
///
/// Keeps the most recent `capacity` events (oldest are overwritten) and
/// counts how many were dropped. Per-kind totals in [`counts`] are exact
/// over *all* emitted events, wrapped or not, so event-count baselines do
/// not depend on the ring capacity.
///
/// [`counts`]: RingSink::counts
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<(u64, Event)>,
    capacity: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    start: usize,
    dropped: u64,
    counts: [u64; KINDS],
}

impl RingSink {
    /// Creates a ring retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            start: 0,
            dropped: 0,
            counts: [0; KINDS],
        }
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact per-kind totals over everything ever emitted, indexed like
    /// [`KIND_NAMES`].
    pub fn counts(&self) -> &[u64; KINDS] {
        &self.counts
    }

    /// Total events ever emitted (retained + dropped).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Retained `(at, event)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Event)> + '_ {
        self.buf[self.start..]
            .iter()
            .chain(self.buf[..self.start].iter())
            .copied()
    }

    /// Drains the ring into an ordered vector (oldest first), keeping the
    /// counts and drop totals.
    pub fn take_events(&mut self) -> Vec<(u64, Event)> {
        let events: Vec<(u64, Event)> = self.iter().collect();
        self.buf.clear();
        self.start = 0;
        events
    }
}

impl EventSink for RingSink {
    const ENABLED: bool = true;

    fn emit(&mut self, at: u64, ev: Event) {
        self.counts[ev.kind_index()] += 1;
        if self.buf.len() < self.capacity {
            self.buf.push((at, ev));
        } else {
            self.buf[self.start] = (at, ev);
            self.start += 1;
            if self.start == self.capacity {
                self.start = 0;
            }
            self.dropped += 1;
        }
    }
}

// ----------------------------------------------------------- observation

/// A point-in-time snapshot of a frequency-tracker structure, produced by
/// the [`Observe`] hook. All O(1) reads: min/max come from the
/// Stream-Summary bucket-list pointers, the rest are stored counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackerObservation {
    /// Occupied entries.
    pub len: u64,
    /// Total entries (`Nentry`).
    pub capacity: u64,
    /// Minimum counter value. Wrapping-counter tables (Mithril's `u16`)
    /// report *relative* values — min is the floor, i.e. `0`.
    pub min: u64,
    /// Maximum counter value (relative for wrapping tables, so
    /// `max - min` is the adaptive-refresh spread).
    pub max: u64,
    /// Cumulative minimum-entry evictions since construction.
    pub evictions: u64,
    /// Entries currently tag-invalidated (CAM upsets awaiting scrub).
    pub invalidations: u64,
}

impl TrackerObservation {
    /// Folds another bank's observation into an aggregate: sizes and
    /// cumulative counters add, the counter span widens.
    pub fn merge(&mut self, other: TrackerObservation) {
        self.len += other.len;
        self.capacity += other.capacity;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

/// Pull-based probe hook for tracker structures (`MithrilTable`,
/// `SpaceSaving`, ...). Must be O(1) and side-effect free so sampling
/// never perturbs the simulation.
pub trait Observe {
    /// Snapshots the structure.
    fn observe(&self) -> TrackerObservation;
}

// -------------------------------------------------------------- sampling

/// One row of the cycle-domain time series: per-channel cumulative
/// command counters, instantaneous queue/tracker state and LLC counters,
/// stamped with the grid cycle it was scheduled for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleRow {
    /// Grid cycle (`k * interval_cycles`) this row samples.
    pub cycle: u64,
    /// Memory channel the row describes.
    pub channel: u32,
    /// Cumulative ACTs issued by the channel's controller.
    pub acts: u64,
    /// Cumulative rank auto-refreshes.
    pub refs: u64,
    /// Cumulative RFMs.
    pub rfms: u64,
    /// Cumulative Mithril+ RFM elisions.
    pub rfm_elisions: u64,
    /// Cumulative ARRs.
    pub arrs: u64,
    /// Requests waiting in the controller queue right now.
    pub queue_depth: u64,
    /// Aggregate tracker snapshot across the channel's banks.
    pub tracker: TrackerObservation,
    /// Cumulative event-core candidate-cache hits (scans that reused
    /// every cached lane candidate).
    pub cand_hits: u64,
    /// Cumulative event-core lane recomputes (cache invalidations
    /// consumed).
    pub cand_invalidations: u64,
    /// Cumulative LLC hits (system-wide; identical across channels of
    /// the same cycle).
    pub llc_hits: u64,
    /// Cumulative LLC misses (system-wide).
    pub llc_misses: u64,
    /// Cumulative ACTs per bank (pressure skew).
    pub bank_acts: Vec<u64>,
}

/// CSV header matching [`SampleRow::csv_line`].
pub const SERIES_CSV_HEADER: &str = "cycle,channel,acts,refs,rfms,rfm_elisions,arrs,queue_depth,\
     occupancy,capacity,ctr_min,ctr_max,evictions,invalidations,\
     cand_hits,cand_invalidations,llc_hits,llc_misses,bank_acts";

impl SampleRow {
    /// Renders the row as one CSV line (no trailing newline). The
    /// per-bank ACT vector is `|`-joined inside the final column.
    pub fn csv_line(&self) -> String {
        let banks: Vec<String> = self.bank_acts.iter().map(u64::to_string).collect();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.cycle,
            self.channel,
            self.acts,
            self.refs,
            self.rfms,
            self.rfm_elisions,
            self.arrs,
            self.queue_depth,
            self.tracker.len,
            self.tracker.capacity,
            self.tracker.min,
            self.tracker.max,
            self.tracker.evictions,
            self.tracker.invalidations,
            self.cand_hits,
            self.cand_invalidations,
            self.llc_hits,
            self.llc_misses,
            banks.join("|")
        )
    }
}

/// Snapshots probes on a fixed cycle grid.
///
/// The caller polls with the current simulated time; whenever one or more
/// grid deadlines have passed, the probe closure runs once per missed
/// deadline and each produced row is stamped with the *scheduled* grid
/// cycle. The grid therefore defines the series: two simulations that
/// reach the same states produce the same rows no matter how unevenly
/// their event loops advance time.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval_cycles: u64,
    cycle_ps: u64,
    /// Next grid index to emit (grid cycle `next_k * interval_cycles`).
    next_k: u64,
    rows: Vec<SampleRow>,
}

impl Sampler {
    /// Creates a sampler on a grid of `interval_cycles` cycles of
    /// `cycle_ps` picoseconds each. The zero-cycle row is skipped (the
    /// initial state is all zeros by construction).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(interval_cycles: u64, cycle_ps: u64) -> Self {
        assert!(interval_cycles > 0, "interval must be non-zero");
        assert!(cycle_ps > 0, "cycle period must be non-zero");
        Self {
            interval_cycles,
            cycle_ps,
            next_k: 1,
            rows: Vec::new(),
        }
    }

    /// The sample grid spacing in cycles.
    pub fn interval_cycles(&self) -> u64 {
        self.interval_cycles
    }

    /// The cycle period in picoseconds.
    pub fn cycle_ps(&self) -> u64 {
        self.cycle_ps
    }

    fn next_deadline_ps(&self) -> u64 {
        self.next_k
            .saturating_mul(self.interval_cycles)
            .saturating_mul(self.cycle_ps)
    }

    /// Emits one row per grid deadline at or before `now_ps`. The probe
    /// receives the scheduled grid cycle and must stamp it into the row.
    pub fn poll(&mut self, now_ps: u64, probe: &mut dyn FnMut(u64) -> SampleRow) {
        while self.next_deadline_ps() <= now_ps {
            let cycle = self.next_k * self.interval_cycles;
            self.rows.push(probe(cycle));
            self.next_k += 1;
        }
    }

    /// Rows recorded so far, in grid order.
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// Consumes the sampler, yielding its rows.
    pub fn into_rows(self) -> Vec<SampleRow> {
        self.rows
    }

    /// Drains the recorded rows, keeping the grid position so sampling
    /// continues where it left off.
    pub fn take_rows(&mut self) -> Vec<SampleRow> {
        std::mem::take(&mut self.rows)
    }
}

// --------------------------------------------------------------- capture

/// Everything observed on one memory channel over a run.
#[derive(Debug, Clone)]
pub struct ChannelCapture {
    /// The channel index.
    pub channel: u32,
    /// Retained `(at_ps, event)` pairs, oldest first.
    pub events: Vec<(u64, Event)>,
    /// Exact per-kind totals (capacity-independent).
    pub counts: [u64; KINDS],
    /// Events the ring had to overwrite.
    pub dropped: u64,
    /// The channel's time-series rows, grid order.
    pub rows: Vec<SampleRow>,
}

/// A full observability capture of one simulation: per-channel events and
/// time series plus the grid parameters, with deterministic renderers for
/// each artifact the CLI writes.
#[derive(Debug, Clone)]
pub struct ObsCapture {
    /// Cycle period used for the grid (picoseconds).
    pub cycle_ps: u64,
    /// Grid spacing in cycles.
    pub interval_cycles: u64,
    /// Per-channel captures, channel order.
    pub channels: Vec<ChannelCapture>,
}

impl ObsCapture {
    /// Exact per-kind totals across all channels.
    pub fn total_counts(&self) -> [u64; KINDS] {
        let mut totals = [0u64; KINDS];
        for ch in &self.channels {
            for (t, c) in totals.iter_mut().zip(ch.counts.iter()) {
                *t += c;
            }
        }
        totals
    }

    /// Total events emitted across all channels.
    pub fn total_events(&self) -> u64 {
        self.total_counts().iter().sum()
    }

    /// Total events dropped by the rings.
    pub fn total_dropped(&self) -> u64 {
        self.channels.iter().map(|c| c.dropped).sum()
    }

    /// Renders the retained events of all channels as JSONL, merged in
    /// `(t_ps, channel, emit order)` order. Each line carries the
    /// timestamp in picoseconds and in grid cycles.
    pub fn events_jsonl(&self) -> String {
        let mut merged: Vec<(u64, u32, usize, Event)> = Vec::new();
        for ch in &self.channels {
            for (seq, &(at, ev)) in ch.events.iter().enumerate() {
                merged.push((at, ch.channel, seq, ev));
            }
        }
        merged.sort_by_key(|&(at, channel, seq, _)| (at, channel, seq));
        let mut out = String::new();
        for (at, channel, _, ev) in merged {
            let payload = ev.payload_json();
            let sep = if payload.is_empty() { "" } else { "," };
            out.push_str(&format!(
                "{{\"t_ps\":{at},\"cycle\":{},\"channel\":{channel},\"kind\":\"{}\"{sep}{payload}}}\n",
                at / self.cycle_ps,
                ev.kind_name(),
            ));
        }
        out
    }

    /// Renders the merged time series as CSV, rows sorted by
    /// `(cycle, channel)`.
    pub fn series_csv(&self) -> String {
        let mut rows: Vec<&SampleRow> = self.channels.iter().flat_map(|c| c.rows.iter()).collect();
        rows.sort_by_key(|r| (r.cycle, r.channel));
        let mut out = String::from(SERIES_CSV_HEADER);
        out.push('\n');
        for row in rows {
            out.push_str(&row.csv_line());
            out.push('\n');
        }
        out
    }

    /// Renders per-kind totals as JSON object members (one per line,
    /// zero kinds included so the shape is fixed).
    fn counts_json(counts: &[u64; KINDS], indent: &str) -> String {
        let lines: Vec<String> = KIND_NAMES
            .iter()
            .zip(counts.iter())
            .map(|(name, n)| format!("{indent}\"{name}\": {n}"))
            .collect();
        lines.join(",\n")
    }

    /// Ring-drop warnings, one string per channel whose ring overwrote
    /// events (payloads lost; exact counts were kept). Empty when nothing
    /// was dropped — the summaries surface these so a truncated capture
    /// is loud instead of a silently smaller `events.jsonl`.
    pub fn warnings(&self) -> Vec<String> {
        self.channels
            .iter()
            .filter(|c| c.dropped > 0)
            .map(|c| {
                format!(
                    "channel {} ring dropped {} events (payloads lost, counts exact)",
                    c.channel, c.dropped
                )
            })
            .collect()
    }

    /// Renders the capture summary: grid parameters, exact per-kind
    /// totals, drop accounting (plus a top-level `warnings` array when
    /// any ring dropped) and per-channel volumes.
    pub fn summary_json(&self) -> String {
        let per_channel: Vec<String> = self
            .channels
            .iter()
            .map(|c| {
                format!(
                    "    {{\"channel\": {}, \"events\": {}, \"retained\": {}, \"dropped\": {}, \"samples\": {}}}",
                    c.channel,
                    c.counts.iter().sum::<u64>(),
                    c.events.len(),
                    c.dropped,
                    c.rows.len()
                )
            })
            .collect();
        format!(
            "{{\n  \"format_version\": {FORMAT_VERSION},\n  \"cycle_ps\": {},\n  \
             \"interval_cycles\": {},\n  \"events_total\": {},\n  \"events_dropped\": {},\n  \
             \"warnings\": [{}],\n  \
             \"samples\": {},\n  \"counts\": {{\n{}\n  }},\n  \"per_channel\": [\n{}\n  ]\n}}\n",
            self.cycle_ps,
            self.interval_cycles,
            self.total_events(),
            self.total_dropped(),
            warnings_json(&self.warnings()),
            self.channels.iter().map(|c| c.rows.len()).sum::<usize>(),
            Self::counts_json(&self.total_counts(), "    "),
            per_channel.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        // Emission through the trait is a no-op.
        let mut s = NullSink;
        s.emit(1, Event::BlissClear);
    }

    #[test]
    fn ring_keeps_newest_and_counts_exactly() {
        let mut ring = RingSink::new(3);
        for i in 0..5u64 {
            ring.emit(i, Event::Act { bank: 0, row: i });
        }
        ring.emit(5, Event::BlissClear);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.counts()[0], 5); // all five ACTs counted
        assert_eq!(ring.counts()[KINDS - 1], 1);
        assert_eq!(ring.total(), 6);
        let kept: Vec<u64> = ring.iter().map(|(at, _)| at).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        let drained = ring.take_events();
        assert_eq!(drained.len(), 3);
        assert!(ring.is_empty());
        assert_eq!(ring.total(), 6, "draining keeps the totals");
    }

    #[test]
    fn kind_names_cover_every_variant() {
        let all = [
            Event::Act { bank: 0, row: 0 },
            Event::Ref { rank: 0, banks: 0 },
            Event::Rfm {
                bank: 0,
                aggressor: None,
                victims: 0,
                skipped: false,
            },
            Event::RfmElided { bank: 0 },
            Event::Arr {
                bank: 0,
                victims: 0,
            },
            Event::MitigationTrigger {
                bank: 0,
                victims: 0,
            },
            Event::TableEvict {
                bank: 0,
                evictions: 0,
            },
            Event::TableInvalidate {
                bank: 0,
                invalidations: 0,
            },
            Event::FaultInject { bank: 0, count: 0 },
            Event::FaultDetect { bank: 0, count: 0 },
            Event::FaultRepair { bank: 0, count: 0 },
            Event::LaneInvalidate {
                bank: 0,
                cause: LaneCause::Enqueue,
            },
            Event::BlissClear,
        ];
        assert_eq!(all.len(), KINDS);
        for (i, ev) in all.iter().enumerate() {
            assert_eq!(ev.kind_index(), i);
            assert_eq!(ev.kind_name(), KIND_NAMES[i]);
        }
    }

    #[test]
    fn sampler_catches_up_on_grid_cycles() {
        let mut s = Sampler::new(10, 2); // deadline every 20 ps
        let mut probe = |cycle: u64| SampleRow {
            cycle,
            ..SampleRow::default()
        };
        s.poll(19, &mut probe);
        assert!(s.rows().is_empty(), "before the first deadline");
        s.poll(20, &mut probe);
        assert_eq!(s.rows().len(), 1);
        // A big jump emits one row per missed grid point.
        s.poll(65, &mut probe);
        let cycles: Vec<u64> = s.rows().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![10, 20, 30]);
    }

    #[test]
    fn capture_renderers_are_deterministic() {
        let capture = ObsCapture {
            cycle_ps: 2,
            interval_cycles: 10,
            channels: vec![
                ChannelCapture {
                    channel: 0,
                    events: vec![
                        (4, Event::Act { bank: 1, row: 7 }),
                        (
                            8,
                            Event::Rfm {
                                bank: 1,
                                aggressor: Some(7),
                                victims: 2,
                                skipped: false,
                            },
                        ),
                    ],
                    counts: {
                        let mut c = [0; KINDS];
                        c[0] = 1;
                        c[2] = 1;
                        c
                    },
                    dropped: 0,
                    rows: vec![SampleRow {
                        cycle: 10,
                        channel: 0,
                        acts: 1,
                        bank_acts: vec![0, 1],
                        ..SampleRow::default()
                    }],
                },
                ChannelCapture {
                    channel: 1,
                    events: vec![(4, Event::BlissClear)],
                    counts: {
                        let mut c = [0; KINDS];
                        c[KINDS - 1] = 1;
                        c
                    },
                    dropped: 0,
                    rows: vec![],
                },
            ],
        };
        let jsonl = capture.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        // Same timestamp: channel 0 sorts before channel 1.
        assert!(lines[0].contains("\"kind\":\"act\""), "{jsonl}");
        assert!(lines[1].contains("\"kind\":\"bliss_clear\""), "{jsonl}");
        assert!(lines[2].contains("\"aggressor\":7"), "{jsonl}");
        assert!(lines[0].contains("\"cycle\":2"), "{jsonl}");

        let csv = capture.series_csv();
        assert!(csv.starts_with("cycle,channel,"));
        assert!(csv.contains("10,0,1,"), "{csv}");
        assert!(csv.ends_with("0|1\n"), "{csv}");

        let summary = capture.summary_json();
        assert!(validate_format_version(&summary).is_ok());
        assert!(summary.contains("\"events_total\": 3"), "{summary}");
        assert_eq!(capture.total_events(), 3);
        assert_eq!(summary, capture.summary_json());
    }

    #[test]
    fn merge_widens_span_and_sums_counters() {
        let mut a = TrackerObservation {
            len: 3,
            capacity: 8,
            min: 0,
            max: 5,
            evictions: 2,
            invalidations: 1,
        };
        a.merge(TrackerObservation {
            len: 4,
            capacity: 8,
            min: 0,
            max: 9,
            evictions: 1,
            invalidations: 0,
        });
        assert_eq!(a.len, 7);
        assert_eq!(a.capacity, 16);
        assert_eq!(a.max, 9);
        assert_eq!(a.evictions, 3);
        assert_eq!(a.invalidations, 1);
    }

    #[test]
    fn format_version_validation() {
        let stamped = format!("{{\n  \"format_version\": {FORMAT_VERSION},\n}}");
        assert!(validate_format_version(&stamped).is_ok());
        assert!(validate_format_version("{\n  \"format_version\": 999,\n}").is_err());
        assert!(validate_format_version("{}").is_err());
    }

    #[test]
    fn summary_surfaces_ring_drops_as_warnings() {
        let mut capture = ObsCapture {
            cycle_ps: 2,
            interval_cycles: 10,
            channels: vec![ChannelCapture {
                channel: 3,
                events: vec![],
                counts: [0; KINDS],
                dropped: 0,
                rows: vec![],
            }],
        };
        assert!(capture.warnings().is_empty());
        assert!(capture.summary_json().contains("\"warnings\": []"));
        capture.channels[0].dropped = 17;
        let summary = capture.summary_json();
        assert!(
            summary.contains("\"warnings\": [\"channel 3 ring dropped 17 events"),
            "{summary}"
        );
    }

    #[test]
    fn histogram_bucket_mapping_is_monotone_and_invertible() {
        // Exact below SUB, continuous at the boundary, monotone overall.
        for v in 0..64u64 {
            let idx = bucket_index(v);
            assert!(bucket_lower_bound(idx) <= v);
            if v < 2 * SUB as u64 {
                assert_eq!(idx, v as usize, "linear region must be exact");
            }
            assert!(bucket_index(v + 1) >= idx);
        }
        // Lower bound is the smallest member of its bucket.
        for idx in 0..HISTOGRAM_BUCKETS {
            let lb = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lb), idx);
            if lb > 0 {
                assert!(bucket_index(lb - 1) < idx);
            }
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_zero_latency_and_empty_percentiles() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p999(), 0);
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.max(), 0);
        assert_eq!(empty.mean(), 0.0);

        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 0);
        assert_eq!((h.min(), h.max()), (0, 0));
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn histogram_saturates_at_the_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        let top = bucket_lower_bound(HISTOGRAM_BUCKETS - 1);
        assert_eq!(h.p50(), top);
        assert_eq!(h.p999(), top);
    }

    #[test]
    fn histogram_percentiles_pick_bucket_lower_bounds() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // Rank 50 is value 50; its bucket [50, 52) has lower bound 50.
        assert_eq!(h.p50(), 50);
        // Rank 95 is value 95, quantized down to its bucket start 92.
        assert_eq!(h.p95(), 92);
        assert_eq!(h.p99(), 96);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99() && h.p99() <= h.p999());
        assert!((h.mean() - 50.5).abs() < 1e-12, "mean is exact");
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let make = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = make(&[0, 1, 17, 900]);
        let b = make(&[5, 5, 123_456]);
        let c = make(&[u64::MAX, 3]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut with_empty = a.clone();
        with_empty.merge(&LatencyHistogram::new());
        assert_eq!(with_empty, a, "empty is the identity");
        let mut from_empty = LatencyHistogram::new();
        from_empty.merge(&a);
        assert_eq!(from_empty.summary_json(), a.summary_json());
    }

    #[test]
    fn histogram_summary_json_is_integer_only() {
        let mut h = LatencyHistogram::new();
        h.record(40);
        h.record(60);
        let json = h.summary_json();
        assert_eq!(
            json,
            "{\"count\":2,\"sum_ps\":100,\"min_ps\":40,\"max_ps\":60,\
             \"p50_ps\":40,\"p95_ps\":60,\"p99_ps\":60,\"p999_ps\":60}"
        );
        assert_eq!(
            LatencyHistogram::new().summary_json(),
            "{\"count\":0,\"sum_ps\":0,\"min_ps\":0,\"max_ps\":0,\
             \"p50_ps\":0,\"p95_ps\":0,\"p99_ps\":0,\"p999_ps\":0}"
        );
    }

    #[test]
    fn per_core_grows_on_demand_and_merges_index_wise() {
        let mut pc: PerCore<u64> = PerCore::new();
        assert!(pc.is_empty());
        *pc.slot(2) += 5;
        assert_eq!(pc.len(), 3);
        assert_eq!(pc.get(0), Some(&0));
        assert_eq!(pc.get(2), Some(&5));
        assert_eq!(pc.get(3), None);

        let mut other: PerCore<u64> = PerCore::new();
        *other.slot(0) += 1;
        *other.slot(4) += 9;
        pc.merge_by(&other, |a, b| *a += b);
        assert_eq!(pc.len(), 5);
        let flat: Vec<u64> = pc.iter().map(|(_, v)| *v).collect();
        assert_eq!(flat, vec![1, 0, 5, 0, 9]);
    }
}
