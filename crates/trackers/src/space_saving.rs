//! The Counter-based Summary (CbS) / Space-Saving algorithm.
//!
//! This is the tracking mechanism Mithril and Graphene are built on
//! (paper Section III-C, Fig. 3). A fixed table of `(address, counter)`
//! entries is maintained:
//!
//! * **on-table hit** — increment the entry's counter;
//! * **miss** — replace the entry holding the *minimum* counter value with
//!   the new address and increment that counter.
//!
//! The resulting estimates bracket the true count (paper inequalities (1)
//! and (2)):
//!
//! ```text
//! actual(x)  <=  estimate(x)  <=  actual(x) + min
//! ```
//!
//! where `min` is the minimum counter value in the table (`0` while the
//! table still has free entries) and `estimate(x)` is the written counter
//! for on-table addresses or `min` for off-table addresses.
//!
//! # Implementation: Stream-Summary buckets
//!
//! [`SpaceSaving`] uses the doubly-linked bucket layout of the original
//! Space-Saving paper (Metwally et al.): entries are grouped into buckets
//! by counter value, buckets form a list ordered by value, and an
//! increment moves an entry to the adjacent bucket — O(1) amortized per
//! `record`, O(1) min/max queries. Ties are broken by *age at the current
//! value*: the oldest entry at the minimum is evicted first and the first
//! entry to reach the maximum is selected first. [`NaiveSpaceSaving`]
//! retains the O(capacity) linear-scan implementation of the same policy
//! for differential testing (`tests/differential.rs`) and benchmarking.

use mithril_fasthash::{fast_map_with_capacity, FastHashMap};
use mithril_streamsummary::BucketList;

use crate::FrequencyTracker;

/// The item sentinel of an invalidated tracker entry (tag CAM upset):
/// the slot keeps its counter but stops tracking its item, exactly as
/// `mithril::INVALID_ROW` does for the Mithril table.
pub const INVALID_ITEM: u64 = u64::MAX;

/// What [`SpaceSaving::record`] did with the item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOutcome {
    /// The item was already tracked; its counter was incremented.
    Hit,
    /// The item took a free entry.
    Inserted,
    /// The item replaced the minimum entry, evicting the returned item.
    Evicted(u64),
}

/// A tracked `(item, count)` pair, as returned by [`SpaceSaving::iter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedEntry {
    /// The tracked item (row address).
    pub item: u64,
    /// Its estimated occurrence count.
    pub count: u64,
}

/// Counter-based Summary (Space-Saving) frequency tracker.
///
/// # Example
///
/// ```
/// use mithril_trackers::{FrequencyTracker, SpaceSaving};
///
/// let mut t = SpaceSaving::new(2);
/// t.record(1);
/// t.record(1);
/// t.record(2);
/// t.record(3); // evicts the minimum entry (2) and inherits its count
/// assert_eq!(t.estimate(1), 2);
/// assert_eq!(t.estimate(3), 2); // 1 (own) + 1 (inherited from 2)
/// // Off-table items are estimated with the table minimum:
/// assert_eq!(t.estimate(2), t.min_count());
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    items: Vec<u64>,
    counts: Vec<u64>,
    /// item -> slot index
    index: FastHashMap<u64, u32>,
    /// The shared Stream-Summary bucket list over the slots.
    list: BucketList<u64>,
    capacity: usize,
    total_recorded: u64,
    /// Cumulative minimum-entry evictions (observability counter).
    evictions: u64,
}

impl SpaceSaving {
    /// Creates a tracker with `capacity` counter entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            items: Vec::with_capacity(capacity),
            counts: Vec::with_capacity(capacity),
            index: fast_map_with_capacity(capacity),
            list: BucketList::with_capacity(capacity),
            capacity,
            total_recorded: 0,
            evictions: 0,
        }
    }

    /// Moves `slot` to the bucket for `count + 1`. O(1) via the shared
    /// [`BucketList`].
    fn increment(&mut self, slot: u32) {
        let v1 = self.counts[slot as usize] + 1;
        self.counts[slot as usize] = v1;
        self.list.advance(slot, v1);
    }

    // ------------------------------------------------------------- tracking

    /// Records `item` and reports what happened to the table.
    pub fn record_outcome(&mut self, item: u64) -> RecordOutcome {
        self.total_recorded += 1;
        if let Some(&slot) = self.index.get(&item) {
            self.increment(slot);
            return RecordOutcome::Hit;
        }
        if self.items.len() < self.capacity {
            let slot = self.items.len() as u32;
            self.items.push(item);
            self.counts.push(1);
            self.index.insert(item, slot);
            self.list.push_slot();
            self.list.place_fresh(slot, 0, 1);
            return RecordOutcome::Inserted;
        }
        // Replace the entry that has held the minimum longest.
        let victim = self
            .list
            .oldest_min_slot()
            .expect("full table is non-empty");
        let evicted = self.items[victim as usize];
        self.index.remove(&evicted);
        self.items[victim as usize] = item;
        self.index.insert(item, victim);
        self.evictions += 1;
        self.increment(victim);
        RecordOutcome::Evicted(evicted)
    }

    /// Cumulative minimum-entry evictions since construction (or the last
    /// [`FrequencyTracker::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The minimum counter value in the table (0 while entries are free).
    ///
    /// This is the off-table estimate and the error bound of inequality (2).
    pub fn min_count(&self) -> u64 {
        if self.items.len() < self.capacity {
            0
        } else {
            self.list.min_value().expect("full table has a min bucket")
        }
    }

    /// The entry with the maximum counter value, if any. On ties, the entry
    /// that reached the maximum first.
    pub fn max_entry(&self) -> Option<TrackedEntry> {
        let slot = self.list.oldest_max_slot()?;
        Some(TrackedEntry {
            item: self.items[slot as usize],
            count: self.list.max_value().expect("non-empty"),
        })
    }

    /// `max - min` over the table counters — Mithril's adaptive-refresh
    /// attack-pattern proxy (paper Section V-A).
    pub fn spread(&self) -> u64 {
        match self.max_entry() {
            Some(max) => max.count - self.min_count(),
            None => 0,
        }
    }

    /// Resets the counter of a tracked `item` down to the table minimum.
    ///
    /// This is the decrement Mithril applies to the greedily selected row
    /// after its victims receive a preventive refresh. Returns `true` if the
    /// item was tracked. Safe because of the upper bound (inequality (2)):
    /// after a refresh the actual count is 0, and the entry may still "owe"
    /// up to `min` counts inherited from evictions.
    pub fn reset_to_min(&mut self, item: u64) -> bool {
        let Some(&slot) = self.index.get(&item) else {
            return false;
        };
        let floor = self.min_count();
        if self.counts[slot as usize] == floor {
            // Already at the floor; nothing to do (and no reordering).
            return true;
        }
        self.counts[slot as usize] = floor;
        self.list.drop_to_floor(slot, floor);
        true
    }

    /// Greedily selects the maximum entry, resets its counter to the table
    /// minimum, and returns it. This is the per-RFM operation of Mithril.
    pub fn take_max_reset_to_min(&mut self) -> Option<TrackedEntry> {
        let max = self.max_entry()?;
        self.reset_to_min(max.item);
        Some(max)
    }

    /// Iterates over tracked `(item, count)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = TrackedEntry> + '_ {
        self.items
            .iter()
            .zip(self.counts.iter())
            .map(|(&item, &count)| TrackedEntry { item, count })
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of `record` calls since the last clear.
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Returns the tracked count for `item`, or `None` if off-table.
    pub fn tracked_count(&self, item: u64) -> Option<u64> {
        self.index
            .get(&item)
            .map(|&slot| self.counts[slot as usize])
    }

    // ------------------------------------------------------ fault surface

    /// Flips one bit of slot `slot`'s counter — a silent upset: the
    /// bucket structure is not told. Returns `false` out of range.
    pub fn flip_counter_bit(&mut self, slot: usize, bit: u32) -> bool {
        if slot >= self.counts.len() || bit >= 64 {
            return false;
        }
        self.counts[slot] ^= 1u64 << bit;
        true
    }

    /// Forces one bit of slot `slot`'s counter to `one` (stuck-at).
    /// Returns `true` only if the stored bit changed.
    pub fn force_counter_bit(&mut self, slot: usize, bit: u32, one: bool) -> bool {
        if slot >= self.counts.len() || bit >= 64 {
            return false;
        }
        let mask = 1u64 << bit;
        let forced = if one {
            self.counts[slot] | mask
        } else {
            self.counts[slot] & !mask
        };
        let changed = forced != self.counts[slot];
        self.counts[slot] = forced;
        changed
    }

    /// Invalidates slot `slot`'s item tag ([`INVALID_ITEM`] sentinel).
    /// Returns `false` if out of range or already invalid.
    pub fn invalidate_entry(&mut self, slot: usize) -> bool {
        if slot >= self.items.len() || self.items[slot] == INVALID_ITEM {
            return false;
        }
        let item = self.items[slot];
        self.index.remove(&item);
        self.items[slot] = INVALID_ITEM;
        true
    }

    /// Verifies the tracker's derived structures against its stored
    /// entries (index ↔ tags, bucket list invariants, bucket values ==
    /// stored counts — counts are unbounded here, so the chain must
    /// increase in absolute value). `Err` describes the first broken
    /// invariant. O(capacity).
    pub fn self_check(&self) -> Result<(), String> {
        let mut valid = 0usize;
        for (slot, &item) in self.items.iter().enumerate() {
            if item == INVALID_ITEM {
                continue;
            }
            valid += 1;
            match self.index.get(&item) {
                Some(&s) if s as usize == slot => {}
                Some(&s) => {
                    return Err(format!(
                        "item {item}: index points at slot {s}, stored in {slot}"
                    ))
                }
                None => return Err(format!("item {item} (slot {slot}): missing from index")),
            }
        }
        if self.index.len() != valid {
            return Err(format!(
                "index has {} items, table stores {valid} valid tags",
                self.index.len()
            ));
        }
        self.list.self_check(|s| self.counts[s as usize], |v| v)
    }

    /// Rebuilds index and bucket list from the stored entries (the
    /// repair half of a scrub pass); ages canonicalize to ascending slot
    /// index, and a duplicated tag invalidates the higher slot —
    /// mirrored by [`NaiveSpaceSaving::repair`]. O(capacity·log).
    pub fn repair(&mut self) {
        self.index.clear();
        for slot in 0..self.items.len() {
            let item = self.items[slot];
            if item == INVALID_ITEM {
                continue;
            }
            match self.index.entry(item) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(slot as u32);
                }
                std::collections::hash_map::Entry::Occupied(_) => {
                    self.items[slot] = INVALID_ITEM;
                }
            }
        }
        let counts = &self.counts;
        self.list.rebuild(|s| counts[s as usize], |v| v);
    }
}

impl FrequencyTracker for SpaceSaving {
    fn record(&mut self, item: u64) {
        let _ = self.record_outcome(item);
    }

    fn estimate(&self, item: u64) -> u64 {
        match self.index.get(&item) {
            Some(&slot) => self.counts[slot as usize],
            None => self.min_count(),
        }
    }

    fn counter_slots(&self) -> usize {
        self.capacity
    }

    fn clear(&mut self) {
        self.items.clear();
        self.counts.clear();
        self.index.clear();
        self.list.clear();
        self.total_recorded = 0;
        self.evictions = 0;
    }
}

impl mithril_obs::Observe for SpaceSaving {
    /// O(1) snapshot for the cycle-domain sampler. The `u64` counters are
    /// absolute, so min/max are the real bucket-list endpoints.
    fn observe(&self) -> mithril_obs::TrackerObservation {
        mithril_obs::TrackerObservation {
            len: self.len() as u64,
            capacity: self.capacity as u64,
            min: self.min_count(),
            max: self.max_entry().map(|e| e.count).unwrap_or(0),
            evictions: self.evictions,
            invalidations: (self.len() - self.index.len()) as u64,
        }
    }
}

/// The retained O(capacity) linear-scan Space-Saving reference.
///
/// Implements the same tie-breaking policy as [`SpaceSaving`] — oldest at
/// the minimum evicted first, first to reach the maximum selected first —
/// with explicit sequence numbers and full scans. Used by the differential
/// property tests and the `tracker_compare` benchmark.
#[derive(Debug, Clone)]
pub struct NaiveSpaceSaving {
    items: Vec<u64>,
    counts: Vec<u64>,
    /// Sequence number of the entry's last counter change.
    seqs: Vec<u64>,
    index: std::collections::HashMap<u64, usize>,
    next_seq: u64,
    capacity: usize,
    total_recorded: u64,
}

impl NaiveSpaceSaving {
    /// Creates a tracker with `capacity` counter entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            items: Vec::with_capacity(capacity),
            counts: Vec::with_capacity(capacity),
            seqs: Vec::with_capacity(capacity),
            index: std::collections::HashMap::with_capacity(capacity),
            next_seq: 0,
            capacity,
            total_recorded: 0,
        }
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn min_slot(&self) -> usize {
        (0..self.counts.len())
            .min_by_key(|&i| (self.counts[i], self.seqs[i]))
            .expect("non-empty")
    }

    fn max_slot(&self) -> usize {
        (0..self.counts.len())
            .min_by_key(|&i| (std::cmp::Reverse(self.counts[i]), self.seqs[i]))
            .expect("non-empty")
    }

    /// Records `item` and reports what happened to the table.
    pub fn record_outcome(&mut self, item: u64) -> RecordOutcome {
        self.total_recorded += 1;
        if let Some(&slot) = self.index.get(&item) {
            self.counts[slot] += 1;
            self.seqs[slot] = self.bump_seq();
            return RecordOutcome::Hit;
        }
        if self.items.len() < self.capacity {
            self.items.push(item);
            self.counts.push(1);
            let seq = self.bump_seq();
            self.seqs.push(seq);
            self.index.insert(item, self.items.len() - 1);
            return RecordOutcome::Inserted;
        }
        let slot = self.min_slot();
        let evicted = self.items[slot];
        self.index.remove(&evicted);
        self.items[slot] = item;
        self.index.insert(item, slot);
        self.counts[slot] += 1;
        self.seqs[slot] = self.bump_seq();
        RecordOutcome::Evicted(evicted)
    }

    /// The minimum counter value (0 while entries are free).
    pub fn min_count(&self) -> u64 {
        if self.items.len() < self.capacity {
            0
        } else {
            self.counts.iter().copied().min().unwrap_or(0)
        }
    }

    /// The entry with the maximum counter value, if any.
    pub fn max_entry(&self) -> Option<TrackedEntry> {
        if self.items.is_empty() {
            return None;
        }
        let slot = self.max_slot();
        Some(TrackedEntry {
            item: self.items[slot],
            count: self.counts[slot],
        })
    }

    /// `max - min` over the table counters.
    pub fn spread(&self) -> u64 {
        match self.max_entry() {
            Some(max) => max.count - self.min_count(),
            None => 0,
        }
    }

    /// Resets the counter of a tracked `item` to the table minimum.
    pub fn reset_to_min(&mut self, item: u64) -> bool {
        let Some(&slot) = self.index.get(&item) else {
            return false;
        };
        let floor = self.min_count();
        if self.counts[slot] != floor {
            self.counts[slot] = floor;
            self.seqs[slot] = self.bump_seq();
        }
        true
    }

    /// Greedy select-max + reset-to-min.
    pub fn take_max_reset_to_min(&mut self) -> Option<TrackedEntry> {
        let max = self.max_entry()?;
        self.reset_to_min(max.item);
        Some(max)
    }

    /// Iterates over tracked `(item, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = TrackedEntry> + '_ {
        self.items
            .iter()
            .zip(self.counts.iter())
            .map(|(&item, &count)| TrackedEntry { item, count })
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total `record` calls since the last clear.
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// The tracked count for `item`, or `None` if off-table.
    pub fn tracked_count(&self, item: u64) -> Option<u64> {
        self.index.get(&item).map(|&slot| self.counts[slot])
    }

    // ------------------------------------------------------ fault surface

    /// Mirror of [`SpaceSaving::flip_counter_bit`].
    pub fn flip_counter_bit(&mut self, slot: usize, bit: u32) -> bool {
        if slot >= self.counts.len() || bit >= 64 {
            return false;
        }
        self.counts[slot] ^= 1u64 << bit;
        true
    }

    /// Mirror of [`SpaceSaving::force_counter_bit`].
    pub fn force_counter_bit(&mut self, slot: usize, bit: u32, one: bool) -> bool {
        if slot >= self.counts.len() || bit >= 64 {
            return false;
        }
        let mask = 1u64 << bit;
        let forced = if one {
            self.counts[slot] | mask
        } else {
            self.counts[slot] & !mask
        };
        let changed = forced != self.counts[slot];
        self.counts[slot] = forced;
        changed
    }

    /// Mirror of [`SpaceSaving::invalidate_entry`].
    pub fn invalidate_entry(&mut self, slot: usize) -> bool {
        if slot >= self.items.len() || self.items[slot] == INVALID_ITEM {
            return false;
        }
        let item = self.items[slot];
        self.index.remove(&item);
        self.items[slot] = INVALID_ITEM;
        true
    }

    /// Mirror of [`SpaceSaving::repair`]: rebuilds the index and
    /// canonicalizes the lost ages to ascending slot order so both
    /// implementations keep making identical decisions after a repair.
    pub fn repair(&mut self) {
        self.index.clear();
        for slot in 0..self.items.len() {
            let item = self.items[slot];
            if item == INVALID_ITEM {
                continue;
            }
            match self.index.entry(item) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(slot);
                }
                std::collections::hash_map::Entry::Occupied(_) => {
                    self.items[slot] = INVALID_ITEM;
                }
            }
        }
        for (slot, seq) in self.seqs.iter_mut().enumerate() {
            *seq = slot as u64;
        }
        self.next_seq = self.seqs.len() as u64;
    }
}

impl FrequencyTracker for NaiveSpaceSaving {
    fn record(&mut self, item: u64) {
        let _ = self.record_outcome(item);
    }

    fn estimate(&self, item: u64) -> u64 {
        match self.index.get(&item) {
            Some(&slot) => self.counts[slot],
            None => self.min_count(),
        }
    }

    fn counter_slots(&self) -> usize {
        self.capacity
    }

    fn clear(&mut self) {
        self.items.clear();
        self.counts.clear();
        self.seqs.clear();
        self.index.clear();
        self.next_seq = 0;
        self.total_recorded = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn exact_counts(stream: &[u64]) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for &x in stream {
            *m.entry(x).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn paper_figure5_sequence() {
        // Reproduces the exact sequence of paper Fig. 5.
        let mut t = SpaceSaving::new(4);
        // Preload the table state: A0:9, B0:9, C0:3, D0:1.
        for _ in 0..9 {
            t.record(0xA0);
        }
        for _ in 0..9 {
            t.record(0xB0);
        }
        for _ in 0..3 {
            t.record(0xC0);
        }
        t.record(0xD0);
        // Step 1: ACT 0xA0 -> A0 becomes 10 and MaxPtr points at it.
        t.record(0xA0);
        assert_eq!(t.estimate(0xA0), 10);
        assert_eq!(t.max_entry().unwrap().item, 0xA0);
        // Step 2: ACT 0xE0 misses -> replaces D0 (min = 1) and becomes 2.
        assert_eq!(t.record_outcome(0xE0), RecordOutcome::Evicted(0xD0));
        assert_eq!(t.estimate(0xE0), 2);
        // Step 3: RFM -> greedy selection of A0, reset to min (= 2).
        let selected = t.take_max_reset_to_min().unwrap();
        assert_eq!(selected.item, 0xA0);
        assert_eq!(selected.count, 10);
        assert_eq!(t.estimate(0xA0), 2);
        assert_eq!(t.max_entry().unwrap().item, 0xB0);
    }

    #[test]
    fn lower_bound_holds_on_adversarial_round_robin() {
        let mut t = SpaceSaving::new(8);
        let stream: Vec<u64> = (0..1000).map(|i| i % 16).collect();
        for &x in &stream {
            t.record(x);
        }
        let exact = exact_counts(&stream);
        for (&x, &actual) in &exact {
            assert!(
                t.estimate(x) >= actual,
                "estimate({x}) = {} < actual {actual}",
                t.estimate(x)
            );
        }
    }

    #[test]
    fn upper_bound_holds() {
        let mut t = SpaceSaving::new(8);
        let stream: Vec<u64> = (0..1000).map(|i| (i * 7) % 23).collect();
        for &x in &stream {
            t.record(x);
        }
        let exact = exact_counts(&stream);
        for entry in t.iter() {
            let actual = exact.get(&entry.item).copied().unwrap_or(0);
            assert!(
                entry.count <= actual + t.min_count(),
                "estimate({}) = {} > actual {} + min {}",
                entry.item,
                entry.count,
                actual,
                t.min_count()
            );
        }
    }

    #[test]
    fn min_is_zero_while_not_full() {
        let mut t = SpaceSaving::new(4);
        t.record(1);
        t.record(1);
        assert_eq!(t.min_count(), 0);
        assert_eq!(t.estimate(42), 0);
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut t = SpaceSaving::new(2);
        for _ in 0..5 {
            t.record(1);
        }
        for _ in 0..3 {
            t.record(2);
        }
        assert_eq!(t.record_outcome(3), RecordOutcome::Evicted(2));
        assert_eq!(t.estimate(3), 4); // 3 (min) + 1
    }

    #[test]
    fn eviction_prefers_oldest_min_entry() {
        let mut t = SpaceSaving::new(3);
        t.record(1);
        t.record(2);
        t.record(3);
        // All at count 1; item 1 has held the minimum longest.
        assert_eq!(t.record_outcome(4), RecordOutcome::Evicted(1));
        // Now 2 is the oldest entry at the minimum.
        assert_eq!(t.record_outcome(5), RecordOutcome::Evicted(2));
    }

    #[test]
    fn spread_tracks_max_minus_min() {
        let mut t = SpaceSaving::new(2);
        assert_eq!(t.spread(), 0);
        for _ in 0..10 {
            t.record(1);
        }
        t.record(2);
        assert_eq!(t.spread(), 9);
        t.take_max_reset_to_min();
        assert_eq!(t.spread(), 0);
    }

    #[test]
    fn reset_to_min_untracked_is_false() {
        let mut t = SpaceSaving::new(2);
        t.record(1);
        assert!(!t.reset_to_min(99));
        assert!(t.reset_to_min(1));
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = SpaceSaving::new(3);
        for i in 0..10 {
            t.record(i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.total_recorded(), 0);
        assert_eq!(t.min_count(), 0);
        assert_eq!(t.max_entry(), None);
        t.record(5);
        assert_eq!(t.estimate(5), 1);
    }

    #[test]
    fn max_entry_survives_interleaved_resets() {
        let mut t = SpaceSaving::new(4);
        for round in 0..50u64 {
            for item in 0..6u64 {
                for _ in 0..=(item % 3) {
                    t.record(item);
                }
            }
            if round % 5 == 0 {
                t.take_max_reset_to_min();
            }
            // max_entry must always report the true maximum.
            let true_max = t.iter().map(|e| e.count).max().unwrap();
            assert_eq!(t.max_entry().unwrap().count, true_max);
            let true_min = t.iter().map(|e| e.count).min().unwrap();
            if t.len() == t.counter_slots() {
                assert_eq!(t.min_count(), true_min);
            }
        }
    }

    #[test]
    fn naive_matches_bucket_on_smoke_stream() {
        let mut fast = SpaceSaving::new(6);
        let mut naive = NaiveSpaceSaving::new(6);
        let mut x = 7u64;
        for i in 0..30_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let item = (x >> 33) % 14;
            assert_eq!(
                fast.record_outcome(item),
                naive.record_outcome(item),
                "at {i}"
            );
            if i % 23 == 22 {
                assert_eq!(fast.take_max_reset_to_min(), naive.take_max_reset_to_min());
            }
            assert_eq!(fast.min_count(), naive.min_count());
            assert_eq!(fast.max_entry(), naive.max_entry());
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn naive_zero_capacity_panics() {
        let _ = NaiveSpaceSaving::new(0);
    }
}
