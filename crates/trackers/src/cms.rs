//! Count-Min Sketch and counting Bloom filters.
//!
//! BlockHammer (HPCA 2021) tracks row activation rates with a pair of
//! *counting Bloom filters* (CBFs), which the Mithril paper classifies as a
//! Count-Min-Sketch-style streaming algorithm (Table I). Both structures
//! over-approximate counts (never undercount) but have **no useful upper
//! bound**, which is why they can only drive throttling remedies, not
//! refresh-based ones (paper Section III-C).

use crate::hash::MultiplyShiftHasher;
use crate::FrequencyTracker;

/// Count-Min Sketch: `depth` independent rows of `2^width_bits` counters.
///
/// `estimate` returns the minimum over the `depth` hashed counters, an upper
/// bound on the true count.
///
/// # Example
///
/// ```
/// use mithril_trackers::{CountMinSketch, FrequencyTracker};
///
/// let mut s = CountMinSketch::new(4, 10, 42);
/// for _ in 0..25 {
///     s.record(1234);
/// }
/// assert!(s.estimate(1234) >= 25);
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: Vec<Vec<u64>>,
    hashers: Vec<MultiplyShiftHasher>,
}

impl CountMinSketch {
    /// Creates a sketch with `depth` rows of `2^width_bits` counters each,
    /// hash functions seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or `width_bits` is not in `1..=63`.
    pub fn new(depth: usize, width_bits: u32, seed: u64) -> Self {
        assert!(depth > 0, "depth must be non-zero");
        let hashers: Vec<_> = (0..depth)
            .map(|i| MultiplyShiftHasher::new(seed.wrapping_add(i as u64), width_bits))
            .collect();
        let width = 1usize << width_bits;
        Self {
            rows: vec![vec![0; width]; depth],
            hashers,
        }
    }

    /// Number of rows (independent hash functions).
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.rows[0].len()
    }
}

impl FrequencyTracker for CountMinSketch {
    fn record(&mut self, item: u64) {
        for (row, h) in self.rows.iter_mut().zip(&self.hashers) {
            row[h.bucket(item)] += 1;
        }
    }

    fn estimate(&self, item: u64) -> u64 {
        self.rows
            .iter()
            .zip(&self.hashers)
            .map(|(row, h)| row[h.bucket(item)])
            .min()
            .expect("depth > 0")
    }

    fn counter_slots(&self) -> usize {
        self.depth() * self.width()
    }

    fn clear(&mut self) {
        for row in &mut self.rows {
            row.fill(0);
        }
    }
}

/// A counting Bloom filter: one array of counters, `k` hash functions.
///
/// This is the exact structure BlockHammer instantiates (one array shared by
/// all hash functions, unlike the per-row arrays of [`CountMinSketch`]).
///
/// # Example
///
/// ```
/// use mithril_trackers::{CountingBloomFilter, FrequencyTracker};
///
/// let mut f = CountingBloomFilter::new(10, 4, 7);
/// for _ in 0..100 {
///     f.record(0xBEEF);
/// }
/// assert!(f.estimate(0xBEEF) >= 100);
/// ```
#[derive(Debug, Clone)]
pub struct CountingBloomFilter {
    counters: Vec<u64>,
    hashers: Vec<MultiplyShiftHasher>,
}

impl CountingBloomFilter {
    /// Creates a filter with `2^size_bits` counters and `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or `size_bits` is not in `1..=63`.
    pub fn new(size_bits: u32, k: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be non-zero");
        let hashers: Vec<_> = (0..k)
            .map(|i| {
                MultiplyShiftHasher::new(seed.wrapping_mul(31).wrapping_add(i as u64), size_bits)
            })
            .collect();
        Self {
            counters: vec![0; 1usize << size_bits],
            hashers,
        }
    }

    /// Number of counters in the filter.
    pub fn num_counters(&self) -> usize {
        self.counters.len()
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> usize {
        self.hashers.len()
    }

    /// The counter buckets `item` maps to (exposed so adversarial workload
    /// generators can construct collision sets, paper Section VI-A).
    pub fn buckets(&self, item: u64) -> Vec<usize> {
        self.hashers.iter().map(|h| h.bucket(item)).collect()
    }

    /// True if `estimate(item) >= threshold` — the BlockHammer blacklist
    /// test.
    pub fn is_blacklisted(&self, item: u64, threshold: u64) -> bool {
        self.estimate(item) >= threshold
    }
}

impl FrequencyTracker for CountingBloomFilter {
    fn record(&mut self, item: u64) {
        // Conservative-increment variant would only bump the minimum
        // counters; BlockHammer uses plain increments, which we follow.
        for h in &self.hashers {
            self.counters[h.bucket(item)] += 1;
        }
    }

    fn estimate(&self, item: u64) -> u64 {
        self.hashers
            .iter()
            .map(|h| self.counters[h.bucket(item)])
            .min()
            .expect("k > 0")
    }

    fn counter_slots(&self) -> usize {
        self.counters.len()
    }

    fn clear(&mut self) {
        self.counters.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn cms_never_undercounts() {
        let mut s = CountMinSketch::new(4, 8, 1);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for i in 0..10_000u64 {
            let item = (i * 31) % 500;
            s.record(item);
            *exact.entry(item).or_insert(0) += 1;
        }
        for (&x, &actual) in &exact {
            assert!(s.estimate(x) >= actual);
        }
    }

    #[test]
    fn cms_is_reasonably_tight_for_hot_items() {
        let mut s = CountMinSketch::new(4, 12, 99);
        for _ in 0..1_000 {
            s.record(42);
        }
        for i in 0..1_000u64 {
            s.record(i + 100);
        }
        let est = s.estimate(42);
        assert!((1_000..=1_200).contains(&est), "estimate {est} too loose");
    }

    #[test]
    fn cbf_never_undercounts() {
        let mut f = CountingBloomFilter::new(8, 4, 3);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for i in 0..5_000u64 {
            let item = i % 300;
            f.record(item);
            *exact.entry(item).or_insert(0) += 1;
        }
        for (&x, &actual) in &exact {
            assert!(f.estimate(x) >= actual);
        }
    }

    #[test]
    fn cbf_blacklist_threshold() {
        let mut f = CountingBloomFilter::new(10, 4, 3);
        for _ in 0..99 {
            f.record(5);
        }
        assert!(!f.is_blacklisted(5, 100));
        f.record(5);
        assert!(f.is_blacklisted(5, 100));
    }

    #[test]
    fn cbf_aliasing_items_share_counts() {
        // Two items mapping to the same buckets are indistinguishable — the
        // property the BlockHammer-adversarial pattern exploits.
        let f = CountingBloomFilter::new(4, 2, 3);
        let reference = f.buckets(0);
        let mut alias = None;
        for cand in 1..100_000u64 {
            if f.buckets(cand) == reference {
                alias = Some(cand);
                break;
            }
        }
        let alias = alias.expect("a 16-counter filter must alias quickly");
        let mut f = f;
        for _ in 0..50 {
            f.record(0);
        }
        assert!(f.estimate(alias) >= 50, "alias must inherit the count");
    }

    #[test]
    fn clear_resets_both() {
        let mut s = CountMinSketch::new(2, 4, 0);
        let mut f = CountingBloomFilter::new(4, 2, 0);
        s.record(9);
        f.record(9);
        s.clear();
        f.clear();
        assert_eq!(s.estimate(9), 0);
        assert_eq!(f.estimate(9), 0);
    }

    #[test]
    fn geometry_accessors() {
        let s = CountMinSketch::new(3, 5, 0);
        assert_eq!(s.depth(), 3);
        assert_eq!(s.width(), 32);
        assert_eq!(s.counter_slots(), 96);
        let f = CountingBloomFilter::new(6, 4, 0);
        assert_eq!(f.num_counters(), 64);
        assert_eq!(f.num_hashes(), 4);
    }
}
