//! The Lossy Counting algorithm (Manku & Motwani).
//!
//! TWiCe's tracking mechanism is a feedback-augmented variant of lossy
//! counting (paper Table I). The stream is divided into *buckets* of `width`
//! items. A tracked entry stores the count accumulated since it was inserted
//! plus `delta`, the maximum count it could have had before insertion. At
//! every bucket boundary, entries whose `count + delta` is at most the
//! current bucket id are pruned.
//!
//! Guarantees, with `n` items recorded and bucket width `w`:
//!
//! * `actual(x) <= estimate(x) <= actual(x) + n/w` — two-sided like CbS, but
//!   the table must hold every item with `actual > n/w` *plus* recently seen
//!   cold items awaiting pruning, which is why Fig. 6 of the paper shows a
//!   larger table than CbS for the same protection level.

use mithril_fasthash::FastHashMap;

use crate::FrequencyTracker;

/// A tracked lossy-counting entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossyEntry {
    /// The tracked item.
    pub item: u64,
    /// Occurrences counted since insertion.
    pub count: u64,
    /// Maximum possible occurrences before insertion (bucket id - 1).
    pub delta: u64,
}

impl LossyEntry {
    /// Upper-bound estimate for this entry.
    pub fn estimate(&self) -> u64 {
        self.count + self.delta
    }
}

/// Lossy Counting frequency tracker with error `1/width` per item recorded.
///
/// # Example
///
/// ```
/// use mithril_trackers::{FrequencyTracker, LossyCounting};
///
/// let mut t = LossyCounting::new(100);
/// for _ in 0..50 {
///     t.record(7);
/// }
/// for i in 0..40 {
///     t.record(1000 + i); // one-off cold items
/// }
/// assert!(t.estimate(7) >= 50);
/// ```
#[derive(Debug, Clone)]
pub struct LossyCounting {
    width: u64,
    entries: FastHashMap<u64, LossyEntry>,
    n: u64,
    current_bucket: u64,
    /// High-water mark of the table population (the hardware would have to
    /// provision this many entries).
    peak_entries: usize,
}

impl LossyCounting {
    /// Creates a lossy counter with bucket `width` (error = 1/width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "width must be non-zero");
        Self {
            width,
            entries: FastHashMap::default(),
            n: 0,
            current_bucket: 1,
            peak_entries: 0,
        }
    }

    /// The bucket width (1/error).
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Number of currently tracked entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest table population observed so far; the size hardware must
    /// provision.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// Iterates over tracked entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &LossyEntry> + '_ {
        self.entries.values()
    }

    /// Returns the tracked entry for `item`, if present.
    pub fn entry(&self, item: u64) -> Option<&LossyEntry> {
        self.entries.get(&item)
    }

    /// Removes `item` from the table (the TWiCe "row refreshed" feedback).
    pub fn remove(&mut self, item: u64) -> bool {
        self.entries.remove(&item).is_some()
    }

    fn prune(&mut self) {
        let bucket = self.current_bucket;
        self.entries.retain(|_, e| e.count + e.delta > bucket);
    }
}

impl FrequencyTracker for LossyCounting {
    fn record(&mut self, item: u64) {
        self.n += 1;
        match self.entries.get_mut(&item) {
            Some(e) => e.count += 1,
            None => {
                self.entries.insert(
                    item,
                    LossyEntry {
                        item,
                        count: 1,
                        delta: self.current_bucket - 1,
                    },
                );
                self.peak_entries = self.peak_entries.max(self.entries.len());
            }
        }
        if self.n.is_multiple_of(self.width) {
            self.prune();
            self.current_bucket += 1;
        }
    }

    fn estimate(&self, item: u64) -> u64 {
        match self.entries.get(&item) {
            Some(e) => e.estimate(),
            // Off-table items may have been recorded and pruned; their count
            // is bounded by the pruning threshold.
            None => self.current_bucket - 1,
        }
    }

    fn counter_slots(&self) -> usize {
        self.peak_entries
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.n = 0;
        self.current_bucket = 1;
        self.peak_entries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn run(stream: &[u64], width: u64) -> (LossyCounting, HashMap<u64, u64>) {
        let mut t = LossyCounting::new(width);
        let mut exact = HashMap::new();
        for &x in stream {
            t.record(x);
            *exact.entry(x).or_insert(0u64) += 1;
        }
        (t, exact)
    }

    #[test]
    fn never_undercounts() {
        let stream: Vec<u64> = (0..5000).map(|i| (i * i) % 97).collect();
        let (t, exact) = run(&stream, 50);
        for (&x, &actual) in &exact {
            assert!(t.estimate(x) >= actual, "estimate({x}) < {actual}");
        }
    }

    #[test]
    fn error_bounded_by_n_over_width() {
        let stream: Vec<u64> = (0..4000).map(|i| i % 37).collect();
        let width = 100;
        let (t, exact) = run(&stream, width);
        let max_err = stream.len() as u64 / width;
        for (&x, &actual) in &exact {
            let est = t.estimate(x);
            assert!(
                est <= actual + max_err,
                "estimate({x}) = {est} > actual {actual} + {max_err}"
            );
        }
    }

    #[test]
    fn hot_items_survive_pruning() {
        let mut stream = Vec::new();
        for i in 0..2000u64 {
            stream.push(i + 1000); // cold noise, all distinct
            if i % 4 == 0 {
                stream.push(7); // hot item, frequency 1/5 of stream
            }
        }
        let (t, exact) = run(&stream, 16);
        assert!(t.entry(7).is_some(), "hot item was pruned");
        assert!(t.estimate(7) >= exact[&7]);
    }

    #[test]
    fn cold_items_get_pruned() {
        let mut t = LossyCounting::new(8);
        for i in 0..1024u64 {
            t.record(i); // every item unique
        }
        // With all-unique items the table cannot grow beyond ~2 buckets.
        assert!(t.len() <= 16, "table kept {} cold entries", t.len());
    }

    #[test]
    fn peak_entries_is_high_water_mark() {
        let mut t = LossyCounting::new(4);
        for i in 0..16u64 {
            t.record(i);
        }
        let peak = t.peak_entries();
        assert!(peak >= t.len());
        // Draining further unique items cannot lower the recorded peak.
        for i in 100..104u64 {
            t.record(i);
        }
        assert!(t.peak_entries() >= peak);
    }

    #[test]
    fn remove_supports_refresh_feedback() {
        let mut t = LossyCounting::new(100);
        for _ in 0..10 {
            t.record(3);
        }
        assert!(t.remove(3));
        assert!(!t.remove(3));
        assert_eq!(t.entry(3), None);
    }

    #[test]
    fn clear_resets() {
        let mut t = LossyCounting::new(10);
        for i in 0..100u64 {
            t.record(i % 5);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.estimate(0), 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = LossyCounting::new(0);
    }
}
