//! Streaming frequency-estimation algorithms used by Row Hammer trackers.
//!
//! Architectural Row Hammer mitigations estimate per-row activation counts
//! from the stream of `ACT` commands using *streaming algorithms*
//! (Mithril, HPCA 2022, Section II-C4 and III-C). This crate implements the
//! algorithm families that the paper builds on or compares against:
//!
//! * [`SpaceSaving`] — the *Counter-based Summary* (CbS) algorithm of
//!   Misra–Gries / Metwally et al., the building block of **Mithril** and
//!   **Graphene**. Provides both a lower bound and an upper bound on the true
//!   count (inequalities (1) and (2) in the paper).
//! * [`LossyCounting`] — the algorithm behind **TWiCe**. Also two-sided, but
//!   needs a larger table for the same error (paper Fig. 6).
//! * [`CountMinSketch`] and [`CountingBloomFilter`] — one-sided
//!   over-approximations used by **BlockHammer**.
//! * [`CounterTree`] — the grouped-counter approach of **CBT**.
//!
//! All trackers observe a stream of `u64` items (row addresses) through
//! [`FrequencyTracker::record`] and answer point queries through
//! [`FrequencyTracker::estimate`].
//!
//! # Example
//!
//! ```
//! use mithril_trackers::{FrequencyTracker, SpaceSaving};
//!
//! let mut t = SpaceSaving::new(4);
//! for _ in 0..10 {
//!     t.record(0xA0);
//! }
//! t.record(0xB0);
//! // Estimates never under-count (inequality (1) of the paper):
//! assert!(t.estimate(0xA0) >= 10);
//! assert!(t.estimate(0xB0) >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cms;
mod hash;
mod lossy;
mod space_saving;
mod tree;

pub use cms::{CountMinSketch, CountingBloomFilter};
pub use hash::MultiplyShiftHasher;
pub use lossy::{LossyCounting, LossyEntry};
pub use space_saving::{NaiveSpaceSaving, RecordOutcome, SpaceSaving, TrackedEntry, INVALID_ITEM};
pub use tree::{CounterTree, TreeStats};

/// A streaming algorithm that estimates per-item occurrence counts.
///
/// Implementations observe every item of a stream via [`record`] and answer
/// point queries via [`estimate`]. All trackers in this crate guarantee the
/// *no-undercount* property required for deterministic Row Hammer protection
/// (paper inequality (1)): `estimate(x) >= actual(x)` for every item `x`,
/// where `actual` is the number of `record(x)` calls since the last
/// [`clear`].
///
/// [`record`]: FrequencyTracker::record
/// [`estimate`]: FrequencyTracker::estimate
/// [`clear`]: FrequencyTracker::clear
///
/// # Example
///
/// ```
/// use mithril_trackers::{FrequencyTracker, LossyCounting};
///
/// fn hot_items<T: FrequencyTracker>(t: &mut T, stream: &[u64], thresh: u64) -> Vec<u64> {
///     for &x in stream {
///         t.record(x);
///     }
///     stream.iter().copied().filter(|&x| t.estimate(x) >= thresh).collect()
/// }
///
/// let mut lc = LossyCounting::new(64);
/// let hot = hot_items(&mut lc, &[7, 7, 7, 9], 3);
/// assert!(hot.contains(&7));
/// ```
pub trait FrequencyTracker {
    /// Records one occurrence of `item`.
    fn record(&mut self, item: u64);

    /// Returns an estimate of how many times `item` was recorded.
    ///
    /// The estimate never under-counts: `estimate(x) >= actual(x)`.
    fn estimate(&self, item: u64) -> u64;

    /// Number of hardware counters this tracker uses (its area proxy).
    fn counter_slots(&self) -> usize;

    /// Forgets all recorded state.
    fn clear(&mut self);
}
