//! Grouped-counter tree (the CBT tracking mechanism).
//!
//! CBT (Seyedzadeh et al.) allocates one counter to a *group* of rows and
//! adaptively splits hot groups into smaller ones, trading per-row precision
//! against table area (paper Sections II-C4 and III-D). The tree starts as a
//! single root counter covering the whole bank. When a leaf counter reaches
//! the *split threshold* and spare counters remain, the leaf splits into two
//! children, each of which **inherits the parent's count** — this keeps the
//! estimate an upper bound, because the ACTs counted at the parent cannot be
//! attributed to either half.
//!
//! When a leaf reaches the hammer threshold, all rows of the group must
//! receive a preventive refresh — the weakness the paper identifies for
//! RFM compatibility (a leaf wider than ~8 rows does not fit in one tRFM
//! window; Section III-D).

use crate::FrequencyTracker;
use std::ops::Range;

#[derive(Debug, Clone)]
struct Node {
    lo: u64,
    hi: u64,
    count: u64,
    /// Index of the left child; the right child is `left + 1`.
    left_child: Option<usize>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.left_child.is_none()
    }

    fn width(&self) -> u64 {
        self.hi - self.lo
    }
}

/// Aggregate statistics about a [`CounterTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Leaf counters currently in use.
    pub leaves: usize,
    /// Splits performed since the last clear.
    pub splits: u64,
    /// Depth of the deepest leaf.
    pub max_depth: u32,
    /// Width (rows) of the widest leaf.
    pub widest_leaf: u64,
}

/// An adaptively splitting tree of grouped activation counters.
///
/// # Example
///
/// ```
/// use mithril_trackers::{CounterTree, FrequencyTracker};
///
/// // 1024 rows, 15 counters, split a group once it has 8 activations.
/// let mut t = CounterTree::new(1024, 15, 8);
/// for _ in 0..100 {
///     t.record(500);
/// }
/// // The hot row's group shrank around it:
/// let group = t.covering_group(500);
/// assert!(group.end - group.start < 1024);
/// assert!(t.estimate(500) >= 100);
/// ```
#[derive(Debug, Clone)]
pub struct CounterTree {
    num_rows: u64,
    max_counters: usize,
    split_threshold: u64,
    nodes: Vec<Node>,
    splits: u64,
}

impl CounterTree {
    /// Creates a tree over rows `0..num_rows` with at most `max_counters`
    /// leaf counters, splitting leaves that reach `split_threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `num_rows` or `max_counters` is zero, or if
    /// `split_threshold` is zero.
    pub fn new(num_rows: u64, max_counters: usize, split_threshold: u64) -> Self {
        assert!(num_rows > 0, "num_rows must be non-zero");
        assert!(max_counters > 0, "max_counters must be non-zero");
        assert!(split_threshold > 0, "split_threshold must be non-zero");
        Self {
            num_rows,
            max_counters,
            split_threshold,
            nodes: vec![Node {
                lo: 0,
                hi: num_rows,
                count: 0,
                left_child: None,
            }],
            splits: 0,
        }
    }

    /// The number of rows the tree covers.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// The range of rows sharing a counter with `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows`.
    pub fn covering_group(&self, row: u64) -> Range<u64> {
        let node = &self.nodes[self.leaf_for(row)];
        node.lo..node.hi
    }

    /// Leaves whose counter is at least `threshold`, as `(rows, count)`.
    pub fn hot_groups(&self, threshold: u64) -> Vec<(Range<u64>, u64)> {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf() && n.count >= threshold)
            .map(|n| (n.lo..n.hi, n.count))
            .collect()
    }

    /// Resets the counter of the group covering `row` (after its rows got a
    /// preventive refresh) and returns the group.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows`.
    pub fn reset_group(&mut self, row: u64) -> Range<u64> {
        let idx = self.leaf_for(row);
        self.nodes[idx].count = 0;
        self.nodes[idx].lo..self.nodes[idx].hi
    }

    /// Statistics about the current tree shape.
    pub fn stats(&self) -> TreeStats {
        let mut leaves = 0;
        let mut widest = 0;
        for n in &self.nodes {
            if n.is_leaf() {
                leaves += 1;
                widest = widest.max(n.width());
            }
        }
        TreeStats {
            leaves,
            splits: self.splits,
            max_depth: self.max_depth(0, 0),
            widest_leaf: widest,
        }
    }

    fn max_depth(&self, idx: usize, depth: u32) -> u32 {
        match self.nodes[idx].left_child {
            None => depth,
            Some(l) => self
                .max_depth(l, depth + 1)
                .max(self.max_depth(l + 1, depth + 1)),
        }
    }

    fn leaf_for(&self, row: u64) -> usize {
        assert!(
            row < self.num_rows,
            "row {row} out of range {}",
            self.num_rows
        );
        let mut idx = 0;
        while let Some(left) = self.nodes[idx].left_child {
            let mid = self.nodes[left].hi;
            idx = if row < mid { left } else { left + 1 };
        }
        idx
    }

    fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    fn try_split(&mut self, idx: usize) {
        let node = &self.nodes[idx];
        if node.width() <= 1
            || node.count < self.split_threshold
            || self.leaf_count() >= self.max_counters
        {
            return;
        }
        let (lo, hi, count) = (node.lo, node.hi, node.count);
        let mid = lo + (hi - lo) / 2;
        let left = self.nodes.len();
        // Children inherit the parent count: the parent's ACTs cannot be
        // attributed, so both halves must assume the worst.
        self.nodes.push(Node {
            lo,
            hi: mid,
            count,
            left_child: None,
        });
        self.nodes.push(Node {
            lo: mid,
            hi,
            count,
            left_child: None,
        });
        self.nodes[idx].left_child = Some(left);
        self.splits += 1;
    }
}

impl FrequencyTracker for CounterTree {
    fn record(&mut self, item: u64) {
        let idx = self.leaf_for(item);
        self.nodes[idx].count += 1;
        self.try_split(idx);
    }

    fn estimate(&self, item: u64) -> u64 {
        self.nodes[self.leaf_for(item)].count
    }

    fn counter_slots(&self) -> usize {
        self.max_counters
    }

    fn clear(&mut self) {
        let n = self.num_rows;
        self.nodes.clear();
        self.nodes.push(Node {
            lo: 0,
            hi: n,
            count: 0,
            left_child: None,
        });
        self.splits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn starts_as_single_group() {
        let t = CounterTree::new(64, 8, 4);
        assert_eq!(t.covering_group(0), 0..64);
        assert_eq!(t.covering_group(63), 0..64);
        assert_eq!(t.stats().leaves, 1);
    }

    #[test]
    fn splits_isolate_hot_rows() {
        let mut t = CounterTree::new(1024, 31, 4);
        for _ in 0..200 {
            t.record(500);
        }
        let group = t.covering_group(500);
        assert!(
            group.end - group.start <= 2,
            "hot group should shrink, got {group:?}"
        );
        // A cold far-away row still shares a wide group.
        let cold = t.covering_group(5);
        assert!(cold.end - cold.start >= 256);
    }

    #[test]
    fn estimate_never_undercounts() {
        let mut t = CounterTree::new(256, 15, 8);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let stream: Vec<u64> = (0..2000u64).map(|i| (i * 17) % 256).collect();
        for &r in &stream {
            t.record(r);
            *exact.entry(r).or_insert(0) += 1;
        }
        for (&r, &actual) in &exact {
            assert!(
                t.estimate(r) >= actual,
                "row {r}: {} < {actual}",
                t.estimate(r)
            );
        }
    }

    #[test]
    fn counter_budget_is_respected() {
        let mut t = CounterTree::new(1 << 16, 7, 1);
        for i in 0..10_000u64 {
            t.record(i % (1 << 16));
        }
        assert!(t.stats().leaves <= 7);
    }

    #[test]
    fn reset_group_zeroes_counter() {
        let mut t = CounterTree::new(128, 3, 1000);
        for _ in 0..10 {
            t.record(7);
        }
        let g = t.reset_group(7);
        assert!(g.contains(&7));
        assert_eq!(t.estimate(7), 0);
    }

    #[test]
    fn hot_groups_reports_threshold_crossers() {
        let mut t = CounterTree::new(128, 15, 4);
        for _ in 0..50 {
            t.record(10);
        }
        for _ in 0..3 {
            t.record(100);
        }
        let hot = t.hot_groups(25);
        assert_eq!(hot.len(), 1);
        assert!(hot[0].0.contains(&10));
    }

    #[test]
    fn children_inherit_parent_count() {
        let mut t = CounterTree::new(16, 3, 4);
        // 4 ACTs to row 0 trigger a split; row 15 (other half) must still be
        // estimated at >= 4 because attribution is impossible.
        for _ in 0..4 {
            t.record(0);
        }
        assert!(t.estimate(15) >= 4);
    }

    #[test]
    fn single_row_leaves_never_split_further() {
        let mut t = CounterTree::new(4, 63, 1);
        for _ in 0..100 {
            t.record(2);
        }
        assert_eq!(t.covering_group(2), 2..3);
    }

    #[test]
    fn clear_rebuilds_root() {
        let mut t = CounterTree::new(64, 15, 2);
        for i in 0..64u64 {
            t.record(i);
        }
        t.clear();
        assert_eq!(t.stats().leaves, 1);
        assert_eq!(t.estimate(0), 0);
        assert_eq!(t.covering_group(63), 0..64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let t = CounterTree::new(8, 3, 2);
        let _ = t.covering_group(8);
    }
}
