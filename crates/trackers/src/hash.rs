//! Cheap, deterministic hash functions for sketch data structures.
//!
//! Hardware sketches (Count-Min Sketch, counting Bloom filters) use simple
//! universal hash families rather than cryptographic hashes. We use the
//! multiply-shift family (Dietzfelbinger et al.), which is 2-universal for
//! power-of-two ranges, preceded by a 64-bit finalizer so that nearby row
//! addresses do not collide systematically.

/// A member of the multiply-shift universal hash family.
///
/// Maps a `u64` key to a bucket in `[0, 2^out_bits)`.
///
/// # Example
///
/// ```
/// use mithril_trackers::MultiplyShiftHasher;
///
/// let h = MultiplyShiftHasher::new(42, 10);
/// let b = h.bucket(0xDEAD_BEEF);
/// assert!(b < 1024);
/// // Deterministic:
/// assert_eq!(b, MultiplyShiftHasher::new(42, 10).bucket(0xDEAD_BEEF));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShiftHasher {
    multiplier: u64,
    out_bits: u32,
}

impl MultiplyShiftHasher {
    /// Creates a hasher for range `[0, 2^out_bits)` seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is 0 or greater than 63.
    pub fn new(seed: u64, out_bits: u32) -> Self {
        assert!(out_bits > 0 && out_bits < 64, "out_bits must be in 1..=63");
        // Derive an odd multiplier from the seed with a splitmix64 round so
        // that consecutive seeds give unrelated hash functions.
        let multiplier = splitmix64(seed) | 1;
        Self { multiplier, out_bits }
    }

    /// Hashes `key` into `[0, 2^out_bits)`.
    pub fn bucket(&self, key: u64) -> usize {
        let mixed = splitmix64(key);
        (mixed.wrapping_mul(self.multiplier) >> (64 - self.out_bits)) as usize
    }

    /// The number of output buckets, `2^out_bits`.
    pub fn range(&self) -> usize {
        1usize << self.out_bits
    }
}

/// One round of the splitmix64 mixing function.
///
/// Used both as a seed expander and a pre-hash finalizer.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_in_range() {
        let h = MultiplyShiftHasher::new(7, 5);
        for key in 0..10_000u64 {
            assert!(h.bucket(key) < 32);
        }
    }

    #[test]
    fn range_matches_out_bits() {
        assert_eq!(MultiplyShiftHasher::new(0, 3).range(), 8);
        assert_eq!(MultiplyShiftHasher::new(0, 12).range(), 4096);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MultiplyShiftHasher::new(1, 16);
        let b = MultiplyShiftHasher::new(2, 16);
        let differing = (0..1000u64).filter(|&k| a.bucket(k) != b.bucket(k)).count();
        assert!(differing > 900, "seeds should give mostly different buckets");
    }

    #[test]
    fn spreads_sequential_keys() {
        // Row addresses arrive sequentially; the finalizer must spread them.
        let h = MultiplyShiftHasher::new(3, 8);
        let mut seen = std::collections::HashSet::new();
        for key in 0..256u64 {
            seen.insert(h.bucket(key));
        }
        assert!(seen.len() > 128, "sequential keys collapsed into {} buckets", seen.len());
    }

    #[test]
    #[should_panic(expected = "out_bits")]
    fn zero_bits_panics() {
        let _ = MultiplyShiftHasher::new(0, 0);
    }
}
