//! Cheap, deterministic hash functions for sketch data structures.
//!
//! Hardware sketches (Count-Min Sketch, counting Bloom filters) use simple
//! universal hash families rather than cryptographic hashes. The
//! implementation lives in the shared [`mithril_fasthash`] crate — the same
//! multiply-shift family (Dietzfelbinger et al.), 2-universal for
//! power-of-two ranges, preceded by a splitmix64 finalizer so that nearby
//! row addresses do not collide systematically. This module re-exports it
//! under the historical `mithril_trackers` paths.

pub use mithril_fasthash::MultiplyShiftHasher;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_in_range() {
        let h = MultiplyShiftHasher::new(7, 5);
        for key in 0..10_000u64 {
            assert!(h.bucket(key) < 32);
        }
    }

    #[test]
    fn range_matches_out_bits() {
        assert_eq!(MultiplyShiftHasher::new(0, 3).range(), 8);
        assert_eq!(MultiplyShiftHasher::new(0, 12).range(), 4096);
    }

    #[test]
    fn spreads_sequential_keys() {
        // Row addresses arrive sequentially; the finalizer must spread them.
        let h = MultiplyShiftHasher::new(3, 8);
        let mut seen = std::collections::HashSet::new();
        for key in 0..256u64 {
            seen.insert(h.bucket(key));
        }
        assert!(
            seen.len() > 128,
            "sequential keys collapsed into {} buckets",
            seen.len()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = MultiplyShiftHasher::new(1, 16);
        let b = MultiplyShiftHasher::new(2, 16);
        let differing = (0..1000u64).filter(|&k| a.bucket(k) != b.bucket(k)).count();
        assert!(
            differing > 900,
            "seeds should give mostly different buckets"
        );
    }
}
