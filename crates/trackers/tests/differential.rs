//! Differential tests: the bucket-based [`SpaceSaving`] must make
//! decisions identical to the retained [`NaiveSpaceSaving`] linear-scan
//! reference — same record outcomes (including *which* item each eviction
//! removes), same greedy selections, same estimates — on random and
//! adversarial streams of at least 10^5 records.

use mithril_trackers::{FrequencyTracker, NaiveSpaceSaving, SpaceSaving};
use proptest::prelude::*;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn assert_final_state_equal(fast: &SpaceSaving, naive: &NaiveSpaceSaving) {
    assert_eq!(fast.len(), naive.len());
    assert_eq!(fast.min_count(), naive.min_count());
    assert_eq!(fast.max_entry(), naive.max_entry());
    assert_eq!(fast.spread(), naive.spread());
    let mut a: Vec<_> = fast.iter().map(|e| (e.item, e.count)).collect();
    let mut b: Vec<_> = naive.iter().map(|e| (e.item, e.count)).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "final table contents diverged");
}

/// 10^5-record random stream with periodic greedy resets, across
/// capacities; every record outcome and selection must match.
#[test]
fn random_stream_100k_identical_decisions() {
    for &(cap, universe) in &[(2usize, 5u64), (8, 20), (32, 128), (256, 640)] {
        let mut fast = SpaceSaving::new(cap);
        let mut naive = NaiveSpaceSaving::new(cap);
        let mut rng = Lcg(0xBEEF ^ cap as u64);
        for i in 0..100_000u64 {
            let item = rng.next() % universe;
            assert_eq!(
                fast.record_outcome(item),
                naive.record_outcome(item),
                "cap {cap}: outcome diverged at record {i}"
            );
            if i % 64 == 63 {
                assert_eq!(
                    fast.take_max_reset_to_min(),
                    naive.take_max_reset_to_min(),
                    "cap {cap}: selection diverged at record {i}"
                );
            }
            if i % 101 == 0 {
                let probe = rng.next() % universe;
                assert_eq!(fast.estimate(probe), naive.estimate(probe));
                assert_eq!(fast.tracked_count(probe), naive.tracked_count(probe));
            }
        }
        assert_final_state_equal(&fast, &naive);
    }
}

/// Adversarial streams: round-robin churn over capacity + 1 items, a
/// hot/cold hammer, and interleaved targeted resets.
#[test]
fn attack_streams_100k_identical_decisions() {
    // Round-robin over cap + 1: every miss evicts, the Space-Saving worst
    // case for eviction-order agreement.
    {
        let cap = 64usize;
        let mut fast = SpaceSaving::new(cap);
        let mut naive = NaiveSpaceSaving::new(cap);
        for i in 0..110_000u64 {
            let item = i % (cap as u64 + 1);
            assert_eq!(
                fast.record_outcome(item),
                naive.record_outcome(item),
                "at {i}"
            );
        }
        assert_final_state_equal(&fast, &naive);
    }
    // Double-sided hammer with camouflage and frequent greedy resets.
    {
        let mut fast = SpaceSaving::new(16);
        let mut naive = NaiveSpaceSaving::new(16);
        let mut rng = Lcg(99);
        for i in 0..120_000u64 {
            let item = match i % 4 {
                0 => 499,
                1 => 501,
                _ => 1_000 + rng.next() % 40,
            };
            assert_eq!(
                fast.record_outcome(item),
                naive.record_outcome(item),
                "at {i}"
            );
            if i % 32 == 31 {
                assert_eq!(fast.take_max_reset_to_min(), naive.take_max_reset_to_min());
            }
        }
        assert_final_state_equal(&fast, &naive);
    }
    // Targeted resets of arbitrary tracked items (the Mithril feedback
    // path), not just the maximum.
    {
        let mut fast = SpaceSaving::new(24);
        let mut naive = NaiveSpaceSaving::new(24);
        let mut rng = Lcg(1234);
        for i in 0..100_000u64 {
            let item = rng.next() % 60;
            assert_eq!(
                fast.record_outcome(item),
                naive.record_outcome(item),
                "at {i}"
            );
            if i % 17 == 16 {
                let target = rng.next() % 60;
                assert_eq!(
                    fast.reset_to_min(target),
                    naive.reset_to_min(target),
                    "at {i}"
                );
            }
        }
        assert_final_state_equal(&fast, &naive);
    }
}

proptest! {
    /// Random record/reset interleavings stay in lockstep for any capacity.
    #[test]
    fn proptest_lockstep(
        stream in prop::collection::vec(
            prop_oneof![
                6 => 0u64..48,
                1 => 5_000u64..5_016,
            ],
            1..2500,
        ),
        cap in 1usize..40,
        reset_every in 1usize..40,
    ) {
        let mut fast = SpaceSaving::new(cap);
        let mut naive = NaiveSpaceSaving::new(cap);
        for (i, &item) in stream.iter().enumerate() {
            prop_assert_eq!(fast.record_outcome(item), naive.record_outcome(item));
            if i % reset_every == reset_every - 1 {
                prop_assert_eq!(fast.take_max_reset_to_min(), naive.take_max_reset_to_min());
            }
            prop_assert_eq!(fast.min_count(), naive.min_count());
            prop_assert_eq!(fast.max_entry(), naive.max_entry());
        }
    }

    /// The bucket tracker also keeps the paper's two-sided error bounds
    /// (inequalities (1)/(2)) — independently of the naive comparison.
    #[test]
    fn bucket_tracker_keeps_error_bounds(
        stream in prop::collection::vec(0u64..64, 1..2000),
        cap in 1usize..32,
    ) {
        let mut t = SpaceSaving::new(cap);
        let mut exact = std::collections::HashMap::new();
        for &x in &stream {
            t.record(x);
            *exact.entry(x).or_insert(0u64) += 1;
        }
        let min = t.min_count();
        for (&x, &actual) in &exact {
            prop_assert!(t.estimate(x) >= actual);
        }
        for e in t.iter() {
            let actual = exact.get(&e.item).copied().unwrap_or(0);
            prop_assert!(e.count <= actual + min);
        }
    }
}
