//! Property-based tests for the streaming-algorithm invariants the paper's
//! safety argument rests on (Section III-C, inequalities (1) and (2)).

use std::collections::HashMap;

use mithril_trackers::{
    CountMinSketch, CounterTree, CountingBloomFilter, FrequencyTracker, LossyCounting, SpaceSaving,
};
use proptest::prelude::*;

fn exact(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &x in stream {
        *m.entry(x).or_insert(0u64) += 1;
    }
    m
}

/// Streams drawn from a small universe so that collisions/evictions occur.
fn dense_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..64, 1..2000)
}

/// Streams with a skewed (hot/cold) distribution.
fn skewed_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(7u64),         // hot row
            2 => 0u64..4,            // warm rows
            5 => 100u64..100_000,    // cold noise
        ],
        1..3000,
    )
}

proptest! {
    // ---------------- Space-Saving (Counter-based Summary) ----------------

    /// Inequality (1): Actual Count <= Estimated Count.
    #[test]
    fn cbs_lower_bound(stream in dense_stream(), cap in 1usize..32) {
        let mut t = SpaceSaving::new(cap);
        for &x in &stream {
            t.record(x);
        }
        for (&x, &actual) in &exact(&stream) {
            prop_assert!(t.estimate(x) >= actual);
        }
    }

    /// Inequality (2): Estimated Count <= Actual Count + Min.
    #[test]
    fn cbs_upper_bound(stream in dense_stream(), cap in 1usize..32) {
        let mut t = SpaceSaving::new(cap);
        for &x in &stream {
            t.record(x);
        }
        let exact = exact(&stream);
        let min = t.min_count();
        for e in t.iter() {
            let actual = exact.get(&e.item).copied().unwrap_or(0);
            prop_assert!(e.count <= actual + min,
                "item {} count {} actual {} min {}", e.item, e.count, actual, min);
        }
    }

    /// The table minimum never exceeds stream_len / capacity — the bound
    /// that ties table size to tracking error.
    #[test]
    fn cbs_min_bounded_by_stream_over_capacity(stream in dense_stream(), cap in 1usize..32) {
        let mut t = SpaceSaving::new(cap);
        for &x in &stream {
            t.record(x);
        }
        prop_assert!(t.min_count() <= stream.len() as u64 / cap as u64);
    }

    /// Greedy selection with reset-to-min keeps both bounds valid if we
    /// model the reset as "actual count also becomes unknown but >= 0".
    /// Concretely: estimates stay >= 0 and max/min/spread stay consistent.
    #[test]
    fn cbs_reset_preserves_table_consistency(
        stream in dense_stream(),
        cap in 2usize..16,
        reset_every in 1usize..50,
    ) {
        let mut t = SpaceSaving::new(cap);
        for (i, &x) in stream.iter().enumerate() {
            t.record(x);
            if i % reset_every == 0 {
                t.take_max_reset_to_min();
            }
            // Consistency: reported max/min bracket every entry.
            let max = t.max_entry().unwrap().count;
            for e in t.iter() {
                prop_assert!(e.count <= max);
            }
            if t.len() == t.counter_slots() {
                let min = t.min_count();
                for e in t.iter() {
                    prop_assert!(e.count >= min);
                }
                prop_assert_eq!(t.spread(), max - min);
            }
        }
    }

    /// The Space-Saving guarantee: any item with actual count > n/cap is
    /// on the table at the end of the stream.
    #[test]
    fn cbs_heavy_hitters_always_tracked(stream in skewed_stream(), cap in 4usize..32) {
        let mut t = SpaceSaving::new(cap);
        for &x in &stream {
            t.record(x);
        }
        let n = stream.len() as u64;
        for (&x, &actual) in &exact(&stream) {
            if actual > n / cap as u64 {
                prop_assert!(t.tracked_count(x).is_some(),
                    "heavy hitter {} (count {}) evicted", x, actual);
            }
        }
    }

    // ---------------- Lossy Counting ----------------

    #[test]
    fn lossy_lower_bound(stream in dense_stream(), width in 1u64..200) {
        let mut t = LossyCounting::new(width);
        for &x in &stream {
            t.record(x);
        }
        for (&x, &actual) in &exact(&stream) {
            prop_assert!(t.estimate(x) >= actual);
        }
    }

    #[test]
    fn lossy_error_bound(stream in dense_stream(), width in 1u64..200) {
        let mut t = LossyCounting::new(width);
        for &x in &stream {
            t.record(x);
        }
        let bound = stream.len() as u64 / width;
        for (&x, &actual) in &exact(&stream) {
            prop_assert!(t.estimate(x) <= actual + bound + 1);
        }
    }

    // ---------------- Count-Min Sketch / CBF ----------------

    #[test]
    fn cms_lower_bound(stream in dense_stream(), depth in 1usize..5, bits in 2u32..10) {
        let mut t = CountMinSketch::new(depth, bits, 42);
        for &x in &stream {
            t.record(x);
        }
        for (&x, &actual) in &exact(&stream) {
            prop_assert!(t.estimate(x) >= actual);
        }
    }

    #[test]
    fn cbf_lower_bound(stream in dense_stream(), k in 1usize..5, bits in 2u32..10) {
        let mut t = CountingBloomFilter::new(bits, k, 7);
        for &x in &stream {
            t.record(x);
        }
        for (&x, &actual) in &exact(&stream) {
            prop_assert!(t.estimate(x) >= actual);
        }
    }

    // ---------------- Counter tree (CBT) ----------------

    #[test]
    fn tree_lower_bound(
        stream in prop::collection::vec(0u64..256, 1..2000),
        counters in 1usize..64,
        split in 1u64..64,
    ) {
        let mut t = CounterTree::new(256, counters, split);
        for &x in &stream {
            t.record(x);
        }
        for (&x, &actual) in &exact(&stream) {
            prop_assert!(t.estimate(x) >= actual,
                "row {}: est {} < actual {}", x, t.estimate(x), actual);
        }
    }

    /// Tree leaves always partition the row space exactly.
    #[test]
    fn tree_leaves_partition_rows(
        stream in prop::collection::vec(0u64..128, 0..500),
        counters in 1usize..32,
    ) {
        let mut t = CounterTree::new(128, counters, 4);
        for &x in &stream {
            t.record(x);
        }
        // Every row belongs to exactly one group, and walking the groups
        // covers the space without gaps or overlap.
        let mut row = 0u64;
        while row < 128 {
            let g = t.covering_group(row);
            prop_assert_eq!(g.start, row);
            prop_assert!(g.end > row);
            row = g.end;
        }
        prop_assert_eq!(row, 128);
    }
}
