//! # mithril-repro — a reproduction of *Mithril* (HPCA 2022)
//!
//! Umbrella crate re-exporting the whole reproduction of
//! *Mithril: Cooperative Row Hammer Protection on Commodity DRAM Leveraging
//! Managed Refresh* (Kim et al., HPCA 2022):
//!
//! * [`trackers`] — streaming frequency-estimation algorithms (CbS /
//!   Space-Saving, Lossy Counting, Count-Min Sketch, counter trees).
//! * [`dram`] — DDR5-class DRAM device and timing model, the RFM interface,
//!   a Row Hammer disturbance oracle and an energy model.
//! * [`core`] — the Mithril and Mithril+ schemes: table, greedy selection,
//!   wrapping counters, adaptive refresh, protection bounds (Theorems 1–2),
//!   configuration solver and area model.
//! * [`baselines`] — PARA, PARFM, Graphene, RFM-Graphene, TWiCe,
//!   BlockHammer and CBT.
//! * [`memctrl`] — memory-controller model (FR-FCFS + BLISS, Minimalist-open
//!   paging, RAA counters / RFM issue logic, ARR, throttling).
//! * [`workloads`] — deterministic synthetic workload and attack traces.
//! * [`trace`] — trace capture/ingest/replay: the MTRC binary format,
//!   Ramulator-style text ingest, recorders and replay adapters (see the
//!   `trace` CLI in `mithril-runner`).
//! * [`sim`] — the trace-driven manycore system simulator tying it together.
//! * [`runner`] — the scenario registry and sharded parallel sweep engine
//!   (`BENCH_sweep.json`), plus the `sweep` and `trace` binaries.
//!
//! ## Quickstart
//!
//! ```
//! use mithril_repro::core::{MithrilConfig, MithrilScheme};
//! use mithril_repro::dram::{DramMitigation, Ddr5Timing};
//!
//! // Configure Mithril for a 6.25K Row Hammer threshold at RFMTH = 128.
//! let timing = Ddr5Timing::ddr5_4800();
//! let config = MithrilConfig::for_flip_threshold(6_250, 128, &timing)?;
//! let mut scheme = MithrilScheme::new(config);
//!
//! // Stream ACTs; issue an RFM every RFMTH activations.
//! for act in 0..1_000u64 {
//!     scheme.on_activate(act % 8);
//!     if (act + 1) % 128 == 0 {
//!         let refreshed = scheme.on_rfm();
//!         // `refreshed` lists the victim rows receiving a preventive refresh.
//!         let _ = refreshed;
//!     }
//! }
//! # Ok::<(), mithril_repro::core::ConfigError>(())
//! ```
//!
//! See `examples/` for full end-to-end scenarios and `crates/bench/src/bin/`
//! for the binaries regenerating every figure and table of the paper.

pub use mithril as core;
pub use mithril_baselines as baselines;
pub use mithril_dram as dram;
pub use mithril_memctrl as memctrl;
pub use mithril_runner as runner;
pub use mithril_sim as sim;
pub use mithril_trace as trace;
pub use mithril_trackers as trackers;
pub use mithril_workloads as workloads;
