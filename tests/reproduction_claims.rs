//! Tests pinning the paper's *quantitative* claims that the reproduction
//! must preserve (the shapes recorded in EXPERIMENTS.md).

use mithril_repro::baselines::{
    parfm_analysis, BlockHammerConfig, GrapheneConfig, TwiCeConfig, FLIP_TH_SWEEP,
};
use mithril_repro::core::{bounds, MithrilConfig};
use mithril_repro::dram::Ddr5Timing;

fn timing() -> Ddr5Timing {
    Ddr5Timing::ddr5_4800()
}

#[test]
fn claim_6_25k_config_is_1kb_class() {
    // Section VI-B: "Mithril can support FlipTH ≈ 6.25K with RFMTH = 128
    // … and a table size per bank of 1KB."
    let c = MithrilConfig::for_flip_threshold(6_250, 128, &timing()).unwrap();
    assert!(c.table_kib() < 1.2, "table = {:.2} KiB", c.table_kib());
}

#[test]
fn claim_low_flipth_needs_4kb_class() {
    // Section VI-B: "lower FlipTH … at the cost of ~2% performance and
    // 4KB of area."
    let c = MithrilConfig::for_flip_threshold(1_500, 32, &timing()).unwrap();
    assert!(
        (2.0..7.0).contains(&c.table_kib()),
        "table = {:.2} KiB",
        c.table_kib()
    );
}

#[test]
fn claim_mithril_tables_4_to_60x_smaller_than_blockhammer() {
    // Section VI-C: "The table size of Mithril is up to 60× and a minimum
    // of 4× smaller than that of BlockHammer at all FlipTH levels."
    let t = timing();
    let rfm_for = |flip: u64| match flip {
        50_000 | 25_000 | 12_500 => 256,
        6_250 => 128,
        3_125 => 64,
        _ => 32,
    };
    for flip in FLIP_TH_SWEEP {
        let bh = BlockHammerConfig::for_flip_threshold(flip, &t).table_kib();
        let m = MithrilConfig::for_flip_threshold(flip, rfm_for(flip), &t)
            .unwrap()
            .table_kib();
        let ratio = bh / m;
        assert!(
            (2.0..80.0).contains(&ratio),
            "FlipTH {flip}: BlockHammer/Mithril = {ratio:.1}"
        );
    }
}

#[test]
fn claim_twice_an_order_of_magnitude_over_graphene() {
    // Related work: "TWiCe … requires an order of magnitude more storage
    // to track aggressor rows compared to Graphene."
    let t = timing();
    for flip in [50_000u64, 12_500, 3_125] {
        let tw = TwiCeConfig::for_flip_threshold(flip, &t).table_kib(&t);
        let g = GrapheneConfig::for_flip_threshold(flip, &t).table_kib(&t);
        assert!(
            tw / g > 5.0,
            "FlipTH {flip}: TWiCe/Graphene = {:.1}",
            tw / g
        );
    }
}

#[test]
fn claim_counter_width_single_bank_fits_16_bits() {
    // Section IV-E / VI-E: wrapping counters bounded by M fit narrow CAMs
    // at every evaluated configuration.
    let t = timing();
    for (flip, rfm) in [
        (50_000u64, 256u64),
        (12_500, 256),
        (6_250, 128),
        (1_500, 32),
    ] {
        let c = MithrilConfig::for_flip_threshold(flip, rfm, &t).unwrap();
        assert!(
            c.counter_bits(&t) <= 16,
            "({flip},{rfm}): {} bits",
            c.counter_bits(&t)
        );
    }
}

#[test]
fn claim_m_shrinks_with_nentry_until_w() {
    // Section IV-D: the Nentry ↔ RFMTH trade-off exists for every FlipTH:
    // more entries lower the bound (until N approaches W).
    let t = timing();
    for rfm in [32u64, 64, 128] {
        let m_small = bounds::theorem1_bound(64, rfm, &t);
        let m_big = bounds::theorem1_bound(512, rfm, &t);
        assert!(m_big < m_small);
    }
}

#[test]
fn claim_parfm_needs_lower_rfmth_than_mithril_at_low_flipth() {
    // Section III-E / VI: "as FlipTH decreases, PARFM requires a lower
    // RFMTH than those in deterministic RFM-based schemes."
    let t = timing();
    let parfm = parfm_analysis::max_rfm_th(1_500, 1e-15, 22, &t).unwrap();
    // Mithril protects 1.5K at RFMTH = 32.
    assert!(MithrilConfig::for_flip_threshold(1_500, 32, &t).is_ok());
    assert!(parfm < 32, "PARFM RFMTH = {parfm}");
}

#[test]
fn claim_adaptive_refresh_surcharge_small() {
    // Fig. 7: "a small increase in Nentry, a maximum of 12% at only a very
    // low FlipTH value" (we allow up to 20% for our exact solver).
    let t = timing();
    for (flip, rfm) in [(3_125u64, 16u64), (6_250, 64)] {
        let base = MithrilConfig::for_flip_threshold(flip, rfm, &t)
            .unwrap()
            .nentry;
        let ad = MithrilConfig::solve(flip, rfm, 1, Some(200), &t)
            .unwrap()
            .nentry;
        let pct = (ad as f64 / base as f64 - 1.0) * 100.0;
        assert!(pct <= 20.0, "({flip},{rfm}): +{pct:.1}%");
    }
}

#[test]
fn claim_rfm_graphene_has_a_flipth_floor() {
    // Fig. 2's analytical skeleton: the best safe FlipTH of the buffered
    // threshold scheme cannot go below ~budget·R/(T+R) + T, minimized near
    // T = sqrt(budget·R); check the floor exceeds 10K at RFMTH 64.
    let t = timing();
    let budget = t.act_budget_per_trefw() as f64;
    let r = 64.0;
    let floor = (0..20)
        .map(|i| {
            let thr = 250.0 * (i + 1) as f64;
            thr + budget * r / (thr + r)
        })
        .fold(f64::INFINITY, f64::min);
    assert!(floor > 10_000.0, "floor = {floor:.0}");
}

#[test]
fn claim_flipth_sweep_all_feasible_for_mithril() {
    // Table IV: Mithril-32 covers the whole sweep down to 1.5K.
    let t = timing();
    for flip in FLIP_TH_SWEEP {
        assert!(
            MithrilConfig::for_flip_threshold(flip, 32, &t).is_ok(),
            "FlipTH {flip} infeasible at RFMTH 32"
        );
    }
}
