//! Cross-crate integration tests: the full stack from workload generation
//! through cores, LLC, memory controller, DRAM device, mitigation engines
//! and the disturbance oracle.

use mithril_repro::baselines::parfm_analysis;
use mithril_repro::core::{bounds, MithrilConfig, MithrilScheme};
use mithril_repro::dram::{AttackHarness, Ddr5Timing};
use mithril_repro::sim::{Scheme, System, SystemConfig};
use mithril_repro::workloads::{
    attack_mix, bh_cover_attack_mix, mix_blend, mix_high, multithreaded,
};

fn quick(scheme: Scheme, flip_th: u64) -> SystemConfig {
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = 4;
    cfg.flip_th = flip_th;
    cfg.scheme = scheme;
    cfg
}

#[test]
fn every_scheme_survives_every_workload_class() {
    // Smoke matrix: all schemes × representative workloads; no panics, no
    // flips for deterministic schemes, forward progress everywhere.
    let schemes = [
        Scheme::None,
        Scheme::Mithril {
            rfm_th: 64,
            ad_th: Some(200),
            plus: false,
        },
        Scheme::Mithril {
            rfm_th: 64,
            ad_th: Some(200),
            plus: true,
        },
        Scheme::Parfm,
        Scheme::Para,
        Scheme::Graphene,
        Scheme::TwiCe,
        Scheme::Cbt,
        Scheme::BlockHammer { nbl_scale: 6 },
    ];
    for scheme in schemes {
        let cfg = quick(scheme, 3_125);
        for (i, threads) in [
            mix_high(4, 7),
            mix_blend(4, 7),
            multithreaded("pagerank", 4, 7),
            attack_mix("double", 4, cfg.mapping(), 7),
        ]
        .into_iter()
        .enumerate()
        {
            let mut sys = System::new(cfg, threads).unwrap();
            let m = sys.run(8_000, u64::MAX);
            assert!(
                m.total_insts >= 4 * 8_000,
                "{} stalled on workload {i}",
                cfg.scheme.name()
            );
            assert!(m.aggregate_ipc > 0.0);
        }
    }
}

#[test]
fn deterministic_schemes_never_flip_under_system_level_attack() {
    for scheme in [
        Scheme::Mithril {
            rfm_th: 32,
            ad_th: Some(200),
            plus: false,
        },
        Scheme::Mithril {
            rfm_th: 32,
            ad_th: Some(200),
            plus: true,
        },
        Scheme::Graphene,
        Scheme::TwiCe,
        Scheme::Cbt,
    ] {
        let cfg = quick(scheme, 1_500);
        let threads = attack_mix("multi", 4, cfg.mapping(), 3);
        let mut sys = System::new(cfg, threads).unwrap();
        let m = sys.run(60_000, u64::MAX);
        assert_eq!(m.flips, 0, "{} flipped", cfg.scheme.name());
        assert!(
            m.max_disturbance < 1_500,
            "{}: disturbance {}",
            cfg.scheme.name(),
            m.max_disturbance
        );
    }
}

#[test]
fn mithril_plus_dominates_mithril_in_rfm_traffic() {
    // Same workload, same table: Mithril+ must issue no more RFMs than
    // Mithril (elision can only remove commands).
    let run = |plus: bool| {
        let cfg = quick(
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: Some(200),
                plus,
            },
            6_250,
        );
        let mut sys = System::new(cfg, mix_blend(4, 5)).unwrap();
        sys.run(30_000, u64::MAX)
    };
    let mithril = run(false);
    let plus = run(true);
    assert!(
        plus.rfms <= mithril.rfms,
        "{} > {}",
        plus.rfms,
        mithril.rfms
    );
    assert!(plus.rfm_elisions > 0);
}

#[test]
fn theorem_bound_is_respected_end_to_end() {
    // Command-level worst case: observed per-victim disturbance stays
    // below 2×M (two aggressors, each bounded by Theorem 1).
    let timing = Ddr5Timing::ddr5_4800();
    for (flip, rfm) in [(6_250u64, 64u64), (3_125, 32)] {
        let cfg = MithrilConfig::for_flip_threshold(flip, rfm, &timing).unwrap();
        let m = bounds::theorem1_bound(cfg.nentry, rfm, &timing);
        let mut h = AttackHarness::new(timing, Box::new(MithrilScheme::new(cfg)), rfm, flip);
        let mut i = 0;
        while h.try_activate(999 + 2 * (i % 2)) {
            i += 1;
        }
        let observed = h.oracle().max_disturbance();
        assert!(
            (observed as f64) < 2.0 * m,
            "FlipTH {flip}: observed {observed} vs 2M = {}",
            2.0 * m
        );
        assert_eq!(h.oracle().flips().len(), 0);
    }
}

#[test]
fn energy_ordering_matches_paper_fig10d() {
    // PARFM refreshes on every RFM; Mithril skips benign ones; Mithril+
    // also elides the commands. Energy must order accordingly on benign
    // workloads.
    let energy = |scheme: Scheme| {
        let cfg = quick(scheme, 3_125);
        let mut sys = System::new(cfg, mix_high(4, 9)).unwrap();
        sys.run(30_000, u64::MAX).energy_pj
    };
    let baseline = energy(Scheme::None);
    let parfm = energy(Scheme::Parfm);
    let mithril = energy(Scheme::Mithril {
        rfm_th: 64,
        ad_th: Some(200),
        plus: false,
    });
    assert!(parfm > baseline, "PARFM must add energy");
    assert!(mithril < parfm, "Mithril must beat PARFM on energy");
}

#[test]
fn parfm_rfm_rate_follows_solved_threshold() {
    let timing = Ddr5Timing::ddr5_4800();
    let solved = parfm_analysis::max_rfm_th(3_125, 1e-15, 22, &timing).unwrap();
    let cfg = quick(Scheme::Parfm, 3_125);
    let mut sys = System::new(cfg, mix_high(4, 2)).unwrap();
    let m = sys.run(30_000, u64::MAX);
    // RFMs ≈ ACTs / solved threshold (within slack for per-bank rounding).
    let expected = m.counters.acts / solved;
    assert!(
        m.rfms >= expected / 4,
        "rfms {} << expected {expected}",
        m.rfms
    );
    assert!(
        m.rfms <= expected + 64 * 2,
        "rfms {} >> expected {expected}",
        m.rfms
    );
}

#[test]
fn blockhammer_adversarial_pattern_hurts_blockhammer_most() {
    // The paper's Fig. 10(c) headline: the profiled CBF-collision pattern
    // degrades BlockHammer while Mithril is pattern-agnostic.
    let run = |scheme: Scheme| {
        let cfg = quick(scheme, 1_500);
        let threads = bh_cover_attack_mix(
            4,
            cfg.mapping(),
            cfg.flip_th,
            &cfg.timing,
            &[0, 1, 249, 250],
            2,
            3,
        );
        let mut sys = System::new(cfg, threads).unwrap();
        // Long enough for the ~123 µs paper-scale throttle delays to land,
        // but time-capped so the throttled attacker cannot stall the run.
        sys.run(250_000, 500 * 1_000_000)
    };
    let baseline = run(Scheme::None);
    let bh = run(Scheme::BlockHammer { nbl_scale: 6 });
    let mithril = run(Scheme::Mithril {
        rfm_th: 32,
        ad_th: Some(200),
        plus: true,
    });
    let bh_norm = bh.normalized_ipc(&baseline);
    let mithril_norm = mithril.normalized_ipc(&baseline);
    assert!(
        bh_norm < mithril_norm,
        "BlockHammer ({bh_norm:.3}) should suffer more than Mithril+ ({mithril_norm:.3})"
    );
    assert!(
        bh.throttled_acts > 0,
        "adversarial pattern must trigger throttling"
    );
}
