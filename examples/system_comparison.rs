//! Full-system scheme comparison: a miniature of paper Figs. 10/11.
//!
//! Runs the 16-core Table-III system on a memory-intensive mix and under a
//! multi-sided Row Hammer attack, for every mitigation scheme, and prints
//! normalized IPC, energy overhead and safety results.
//!
//! ```text
//! cargo run --release --example system_comparison            # quick
//! cargo run --release --example system_comparison -- 200000  # longer
//! ```

use mithril_repro::sim::{Scheme, System, SystemConfig};
use mithril_repro::workloads::{attack_mix, mix_high};

fn main() {
    let insts: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let flip_th = 3_125;
    let rfm_th = 64;

    let mut cfg = SystemConfig::table_iii();
    cfg.flip_th = flip_th;

    let schemes = [
        ("none", Scheme::None),
        ("mithril", Scheme::Mithril { rfm_th, ad_th: Some(200), plus: false }),
        ("mithril+", Scheme::Mithril { rfm_th, ad_th: Some(200), plus: true }),
        ("parfm", Scheme::Parfm),
        ("graphene", Scheme::Graphene),
        ("twice", Scheme::TwiCe),
        ("cbt", Scheme::Cbt),
        ("para", Scheme::Para),
        ("blockhammer", Scheme::BlockHammer { nbl_scale: 6 }),
    ];

    type Maker = fn(&SystemConfig) -> mithril_repro::workloads::ThreadSet;
    let workloads: [(&str, Maker); 2] = [
        ("mix-high (benign)", |c| mix_high(c.cores, 42)),
        ("mix-high + 32-sided attack", |c| attack_mix("multi", c.cores, c.mapping(), c.channels, 42)),
    ];
    for (workload_name, mk) in workloads {
        println!("== {workload_name}: FlipTH {flip_th}, {insts} insts/core ==");
        println!(
            "{:<12} {:>9} {:>10} {:>8} {:>12} {:>8}",
            "scheme", "IPC(norm)", "energy", "RFMs", "disturb(max)", "flips"
        );
        let mut baseline = None;
        for (name, scheme) in schemes {
            cfg.scheme = scheme;
            let mut sys = match System::new(cfg, mk(&cfg)) {
                Ok(s) => s,
                Err(e) => {
                    println!("{name:<12} unavailable: {e}");
                    continue;
                }
            };
            // Cap simulated time so a throttled attacker thread cannot
            // stretch the run (and its refresh energy) unboundedly.
            let m = sys.run(insts, insts * 16_000);
            if baseline.is_none() {
                baseline = Some(m.clone());
            }
            let b = baseline.as_ref().unwrap();
            println!(
                "{name:<12} {:>8.1}% {:>9.2}% {:>8} {:>12} {:>8}",
                m.normalized_ipc(b) * 100.0,
                (m.relative_energy(b) - 1.0) * 100.0,
                m.rfms,
                m.max_disturbance,
                m.flips
            );
        }
        println!();
    }
    println!("Deterministic schemes keep max disturbance < FlipTH with 0 flips;");
    println!("the unprotected baseline's disturbance keeps growing under attack.");
}
