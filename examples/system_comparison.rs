//! Full-system scheme comparison: a miniature of paper Figs. 10/11.
//!
//! Runs the 16-core Table-III system on a memory-intensive mix and under a
//! multi-sided Row Hammer attack, for every mitigation scheme, and prints
//! normalized IPC, energy overhead and safety results. The scheme catalog
//! comes from the shared scenario registry, and the whole scheme × workload
//! grid fans out on the runner's sharded engine.
//!
//! ```text
//! cargo run --release --example system_comparison            # quick
//! cargo run --release --example system_comparison -- 200000  # longer
//! ```

use mithril_repro::runner::engine::{default_threads, run_sharded, PoolConfig};
use mithril_repro::runner::scenarios::all_schemes;
use mithril_repro::sim::{Metrics, System, SystemConfig};
use mithril_repro::workloads::{attack_mix, mix_high, ThreadSet};

fn main() {
    let insts: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let flip_th = 3_125;
    let rfm_th = 64;

    let mut cfg = SystemConfig::table_iii();
    cfg.flip_th = flip_th;

    let schemes = all_schemes(rfm_th, 6);

    type Maker = fn(&SystemConfig) -> ThreadSet;
    let workloads: [(&str, Maker); 2] = [
        ("mix-high (benign)", |c| mix_high(c.cores, 42)),
        ("mix-high + 32-sided attack", |c| {
            attack_mix("multi", c.cores, c.mapping(), 42)
        }),
    ];

    // One grid cell per (workload, scheme); each runs independently on the
    // shard pool, results come back in input order.
    let grid: Vec<(usize, &str, mithril_repro::sim::Scheme)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(w, _)| schemes.iter().map(move |&(name, s)| (w, name, s)))
        .collect();
    let pool = PoolConfig {
        threads: default_threads(),
        shard_size: 1,
    };
    let results: Vec<Option<Metrics>> = run_sharded(&grid, pool, 42, |&(w, _, scheme), _| {
        let mut cfg = cfg;
        cfg.scheme = scheme;
        let mut sys = System::new(cfg, workloads[w].1(&cfg)).ok()?;
        // Cap simulated time so a throttled attacker thread cannot
        // stretch the run (and its refresh energy) unboundedly.
        Some(sys.run(insts, insts * 16_000))
    });

    for (w, (workload_name, _)) in workloads.iter().enumerate() {
        println!("== {workload_name}: FlipTH {flip_th}, {insts} insts/core ==");
        println!(
            "{:<12} {:>9} {:>10} {:>8} {:>12} {:>8}",
            "scheme", "IPC(norm)", "energy", "RFMs", "disturb(max)", "flips"
        );
        let mut baseline: Option<&Metrics> = None;
        for (i, &(gw, name, _)) in grid.iter().enumerate() {
            if gw != w {
                continue;
            }
            let Some(m) = &results[i] else {
                println!("{name:<12} unavailable (infeasible at FlipTH {flip_th})");
                continue;
            };
            let b = *baseline.get_or_insert(m);
            println!(
                "{name:<12} {:>8.1}% {:>9.2}% {:>8} {:>12} {:>8}",
                m.normalized_ipc(b) * 100.0,
                (m.relative_energy(b) - 1.0) * 100.0,
                m.rfms,
                m.max_disturbance,
                m.flips
            );
        }
        println!();
    }
    println!("Deterministic schemes keep max disturbance < FlipTH with 0 flips;");
    println!("the unprotected baseline's disturbance keeps growing under attack.");
}
