//! Attack gallery: run the paper's attack patterns against Mithril and the
//! unprotected baseline at command level, and report the worst victim
//! disturbance each achieves — then the system-level, channel-aware entry:
//! the cross-channel interference mix (hammer on channel 0, streaming
//! victims on channel 1), with per-channel metrics showing the mitigation
//! work staying on the hammered channel.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use mithril_repro::core::{MithrilConfig, MithrilScheme};
use mithril_repro::dram::{AttackHarness, Ddr5Timing, DramMitigation, NoMitigation};
use mithril_repro::sim::{Scheme, System, SystemConfig};
use mithril_repro::workloads::channel_interference_mix;

/// Builds the row for attack `name` at step `i`.
fn pattern(name: &str, i: u64) -> u64 {
    match name {
        "single-row" => 1_000,
        "double-sided" => 999 + 2 * (i % 2),
        "multi-sided-32" => 5_000 + 2 * (i % 32),
        "table-thrash" => 100 + 2 * (i % 300), // slightly over Nentry
        "sweep" => (i * 17) % 60_000,          // benign-looking cover traffic
        _ => unreachable!(),
    }
}

fn run(engine: Box<dyn DramMitigation>, rfm_th: u64, flip_th: u64, name: &str) -> (u64, usize) {
    let timing = Ddr5Timing::ddr5_4800();
    let mut h = AttackHarness::new(timing, engine, rfm_th, flip_th);
    let mut i = 0u64;
    while h.try_activate(pattern(name, i)) {
        i += 1;
    }
    (h.oracle().max_disturbance(), h.oracle().flips().len())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let timing = Ddr5Timing::ddr5_4800();
    let flip_th = 6_250;
    let rfm_th = 128;
    let config = MithrilConfig::for_flip_threshold(flip_th, rfm_th, &timing)?;

    println!("One full tREFW window per attack, FlipTH = {flip_th}, RFMTH = {rfm_th}\n");
    println!(
        "{:<16} {:>22} {:>22}",
        "attack", "unprotected max/flips", "mithril max/flips"
    );
    for name in [
        "single-row",
        "double-sided",
        "multi-sided-32",
        "table-thrash",
        "sweep",
    ] {
        let (base_max, base_flips) = run(Box::new(NoMitigation), rfm_th, flip_th, name);
        let (m_max, m_flips) = run(Box::new(MithrilScheme::new(config)), rfm_th, flip_th, name);
        println!(
            "{name:<16} {:>15} / {:<4} {:>15} / {:<4}",
            base_max, base_flips, m_max, m_flips
        );
        assert_eq!(m_flips, 0, "Mithril must stop {name}");
    }
    println!("\nThe focused hammers flip bits within one window when unprotected;");
    println!("under Mithril no pattern flips, and the worst victim stays two");
    println!("orders of magnitude below FlipTH. The table-thrash row shows why");
    println!("the bound must hold for *any* pattern: its per-victim pressure is");
    println!("diffuse, but a smaller table would have let it through.");

    // ------------------------------------------------------------------
    // System-level entry: cross-channel interference. A 32-sided hammer
    // saturates channel 0 while benign threads stream on channel 1; under
    // Mithril the RFM work stays on the hammered channel.
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = 8;
    cfg.flip_th = flip_th;
    cfg.scheme = Scheme::Mithril {
        rfm_th: 64,
        ad_th: Some(200),
        plus: false,
    };
    let threads = channel_interference_mix(cfg.cores, cfg.mapping(), 42);
    let mut sys = System::new(cfg, threads).expect("valid config");
    let m = sys.run(30_000, u64::MAX);
    println!("\nchannel-interference (hammer@ch0, streams@ch1, Mithril):");
    println!(
        "{:<10} {:>8} {:>12} {:>16} {:>14}",
        "channel", "RFMs", "prev. rows", "read latency ns", "disturb(max)"
    );
    for ch in &m.per_channel {
        println!(
            "ch{:<9} {:>8} {:>12} {:>16.1} {:>14}",
            ch.channel.0,
            ch.rfms,
            ch.counters.preventive_rows,
            ch.avg_read_latency_ns,
            ch.max_disturbance
        );
    }
    assert_eq!(
        m.flips, 0,
        "Mithril must stop the cross-channel scenario too"
    );
    assert_eq!(
        m.per_channel[1].counters.preventive_rows, 0,
        "victim channel must not pay preventive refreshes"
    );
    println!("\nAll preventive-refresh rows land on the hammered channel; the");
    println!("victims' channel streams at benign latency and its RAA-cadence");
    println!("RFMs find an empty tracker (no preventive rows, no extra energy).");
    Ok(())
}
