//! Trace round-trip: record a registry workload to an MTRC capture,
//! inspect it, replay it through the system under Mithril, and verify the
//! replay is bit-identical to live generation.
//!
//! ```text
//! cargo run --release --example trace_roundtrip
//! ```
//!
//! The same flow is available from the command line:
//!
//! ```text
//! trace record --workload mix-high --cores 4 --insts 20000 --out mix.mtrc
//! trace stat   --trace mix.mtrc
//! trace replay --trace mix.mtrc --scheme mithril --metrics-only
//! ```

use std::io::BufWriter;

use mithril_repro::runner::engine::PoolConfig;
use mithril_repro::runner::report::metrics_only_json;
use mithril_repro::runner::scenarios::{workload, SweepSpec};
use mithril_repro::runner::{engine, run_sweep};
use mithril_repro::sim::{Scheme, SystemConfig};
use mithril_repro::trace::{
    record_thread_set, stats_from_reader, MtrcReader, MtrcWriter, TraceHeader,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base_seed = 7u64;
    let cores = 4usize;
    let insts = 10_000u64;

    // 1. Record: render `mix-high` to a capture, seeding the generators
    //    with the item seed the sweep engine will assign the replay
    //    scenario at position (shard 0, offset 0) under `base_seed`.
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = cores;
    let mut set = workload("mix-high", cores, &cfg, engine::item_seed(base_seed, 0, 0));
    let path = std::env::temp_dir().join(format!("mithril_roundtrip_{}.mtrc", std::process::id()));
    let header = TraceHeader {
        geometry: cfg.geometry,
        cores,
        base_seed,
        insts_per_core: insts,
        source: "mix-high".into(),
    };
    let mut writer = MtrcWriter::new(BufWriter::new(std::fs::File::create(&path)?), &header)?;
    let ops = record_thread_set(&mut set, insts, &mut writer)?;
    writer.finish()?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "recorded {ops} ops ({cores} cores x {insts} insts) -> {bytes} bytes, {:.2} B/op",
        bytes as f64 / ops as f64
    );

    // 2. Inspect: stream the capture back through the stat collector.
    let reader = MtrcReader::new(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    let stats = stats_from_reader(reader, 3)?;
    println!(
        "capture touches {} distinct rows; busiest channel serves {} of {} accesses",
        stats.distinct_rows,
        stats.per_channel_accesses.iter().max().unwrap(),
        stats.total_ops
    );
    for h in &stats.hot_rows {
        println!(
            "  hot row ch{} bank{} row{}: {} accesses (tracker view: {})",
            h.channel, h.bank, h.row, h.count, h.tracker_estimate
        );
    }

    // 3. Replay vs live: the same scenario, once from the capture and once
    //    regenerated, must produce byte-identical metrics — at any thread
    //    count.
    let spec = |name: String| SweepSpec {
        geometries: vec![cfg.geometry],
        schemes: vec![(
            "mithril".into(),
            Scheme::Mithril {
                rfm_th: 64,
                ad_th: Some(200),
                plus: false,
            },
        )],
        workloads: vec![name],
        flip_th: 6_250,
        cores,
        insts_per_core: insts,
    };
    let pool = |threads| PoolConfig {
        threads,
        shard_size: 1,
    };
    let live = run_sweep(&spec("mix-high".into()), pool(1), base_seed);
    let replay = run_sweep(
        &spec(format!("trace:{}", path.display())),
        pool(4),
        base_seed,
    );
    let live_json = metrics_only_json(base_seed, &live);
    let replay_json = metrics_only_json(base_seed, &replay);
    std::fs::remove_file(&path).ok();
    assert_eq!(
        live_json, replay_json,
        "replayed metrics must be bit-identical to live generation"
    );
    let m = replay[0].outcome.as_ref().expect("replay ran");
    println!(
        "replay == live: aggregate IPC {:.3}, {} RFMs, {} flips (byte-identical report, 4 threads vs 1)",
        m.aggregate_ipc, m.rfms, m.flips
    );
    Ok(())
}
