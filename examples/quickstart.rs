//! Quickstart: configure Mithril for a DRAM bank, hammer it, and watch the
//! protection work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mithril_repro::core::{MithrilConfig, MithrilScheme};
use mithril_repro::dram::{AttackHarness, Ddr5Timing};
use mithril_repro::sim::{Metrics, QosPolicy, SchedulerKind, Scheme, System, SystemConfig};
use mithril_repro::workloads::{mix_high, noisy_neighbor_mix};

/// Worst victim read p99 of a noisy-neighbor run (the hammering tenant
/// sits on the highest core index; everyone else is a victim).
fn victim_p99(m: &Metrics) -> u64 {
    let hammer = m.per_core.iter().map(|(core, _)| core).max();
    m.per_core
        .iter()
        .filter(|(core, _)| Some(*core) != hammer)
        .map(|(_, c)| c.read_latency.p99())
        .max()
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick the protection target: the Row Hammer threshold of the DRAM
    //    part (FlipTH) and the RFM cadence the memory controller will be
    //    programmed with (RFMTH).
    let timing = Ddr5Timing::ddr5_4800();
    let flip_th = 6_250;
    let rfm_th = 128;

    // 2. Solve the minimal Mithril table for that target. The solver picks
    //    the smallest Nentry whose Theorem-1 bound M stays below FlipTH/2.
    let config = MithrilConfig::for_flip_threshold(flip_th, rfm_th, &timing)?;
    println!("Solved configuration:");
    println!("  Nentry        = {} entries", config.nentry);
    println!(
        "  counter width = {} bits (wrapping)",
        config.counter_bits(&timing)
    );
    println!("  table size    = {:.2} KiB per bank", config.table_kib());
    println!(
        "  bound M       = {:.0} (< FlipTH/2 = {})",
        config.bound(&timing),
        flip_th / 2
    );

    // 3. Put the engine in a bank and run a double-sided hammer for a full
    //    32 ms refresh window at the maximum activation rate. The harness
    //    models the DDR5 timing budget exactly; the oracle tracks the true
    //    disturbance of every victim row.
    let engine = MithrilScheme::new(config);
    let mut bank = AttackHarness::new(timing, Box::new(engine), rfm_th, flip_th);
    let started = std::time::Instant::now();
    let mut i = 0u64;
    while bank.try_activate(if i.is_multiple_of(2) { 999 } else { 1001 }) {
        i += 1;
    }
    let elapsed = started.elapsed();

    // 4. Inspect the outcome.
    let oracle = bank.oracle();
    println!("\nAfter one tREFW of double-sided hammering (rows 999/1001):");
    println!("  activations issued    = {i}");
    println!("  RFMs issued           = {}", bank.rfms_issued());
    println!(
        "  preventive refreshes  = {}",
        bank.counters().preventive_rows
    );
    println!(
        "  worst victim count    = {} (FlipTH = {flip_th})",
        oracle.max_disturbance()
    );
    println!("  bit flips             = {}", oracle.flips().len());
    assert!(oracle.flips().is_empty(), "Mithril must prevent all flips");
    println!("\nNo victim reached FlipTH — the deterministic guarantee held.");

    // 5. Simulation throughput: every ACT updates the Stream-Summary table,
    //    the oracle and the timing model, so this is the end-to-end hot
    //    path (see ARCHITECTURE.md and BENCH_table.json).
    let per_sec = i as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "\nSimulated {i} activations in {:.1} ms — {:.2}M activations/sec",
        elapsed.as_secs_f64() * 1e3,
        per_sec / 1e6
    );

    // 6. Full-system rate: the number above is the per-bank attack harness;
    //    the figure sweeps actually experience is the full System loop
    //    (cores + LLC + controllers + DRAM) on the event-driven controller
    //    core. BENCH_table.json's `sim_ops_per_sec` section tracks this
    //    against the naive-rescan reference scheduler.
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = 4;
    cfg.scheme = Scheme::None;
    cfg.scheduler = SchedulerKind::EventQueue;
    let mut sys = System::new(cfg, mix_high(4, 11))?;
    let started = std::time::Instant::now();
    let metrics = sys.run(60_000, u64::MAX);
    let dt = started.elapsed().as_secs_f64().max(1e-9);
    println!(
        "\nEnd-to-end system rate (event-driven controller core, 4 cores):\n  \
         {:.2}M simulated activations/sec, {:.2}M instructions/sec\n  \
         read latency p50 = {} ps, p99 = {} ps ({} reads histogrammed)",
        metrics.counters.acts as f64 / dt / 1e6,
        metrics.total_insts as f64 / dt / 1e6,
        metrics.read_latency.p50(),
        metrics.read_latency.p99(),
        metrics.read_latency.count()
    );

    // 7. Beyond synthetic generators: capture and replay traces with the
    //    `trace` CLI (see examples/trace_roundtrip.rs for the library API).
    println!("\nTrace capture & replay quickstart:");
    println!("  trace record  --workload mix-high --cores 4 --insts 20000 --out mix.mtrc");
    println!("  trace stat    --trace mix.mtrc --top 10");
    println!("  trace replay  --trace mix.mtrc --scheme mithril --metrics-only");
    println!("  trace convert --in ramulator.txt --out ext.mtrc --in-format ramulator");
    println!("  (binary: cargo run --release -p mithril-runner --bin trace -- ...)");

    // 8. Observability: attach structured event logs and cycle-domain time
    //    series to any sweep or replay — bit-identical at any --threads,
    //    and free when not attached (see ARCHITECTURE.md, Observability).
    println!("\nObservability quickstart:");
    println!(
        "  sweep --smoke --obs obs_out/          # events.jsonl + series.csv + obs_counts.json"
    );
    println!("  trace replay --trace mix.mtrc --obs obs_out/");
    println!("  obs report baseline.json candidate.json --fail-on-regression 5");

    // 9. Multi-tenant QoS: co-locate three latency-sensitive tenants with
    //    a hammering neighbor and let the controller throttle the suspect
    //    (see "Multi-tenant QoS & throttling" in ARCHITECTURE.md; report
    //    fields in docs/REPORT_SCHEMA.md).
    let run_noisy = |qos| -> Result<Metrics, Box<dyn std::error::Error>> {
        let mut cfg = SystemConfig::table_iii();
        cfg.cores = 4;
        cfg.scheme = Scheme::Mithril {
            rfm_th: 64,
            ad_th: None,
            plus: false,
        };
        cfg.qos = qos;
        let set = noisy_neighbor_mix(4, cfg.mapping(), 1);
        let mut sys = System::new(cfg, set)?;
        Ok(sys.run(20_000, u64::MAX))
    };
    let off = run_noisy(QosPolicy::Off)?;
    let on = run_noisy(QosPolicy::Throttle(Default::default()))?;
    println!(
        "\nNoisy neighbor (1 hammer + 3 victims, mithril): victim p99 {} ps \
         without QoS -> {} ps with QoS, flips {} = {}",
        victim_p99(&off),
        victim_p99(&on),
        off.flips,
        on.flips
    );
    println!("  full campaign: sweep --qos --smoke   (BENCH_qos.json, off/on pairs)");
    println!("  walkthrough:   cargo run --release --example noisy_neighbor");
    Ok(())
}
