//! Noisy-neighbor walkthrough: one hammering tenant, three
//! latency-sensitive victims, and the QoS throttling layer that protects
//! the victims' tail latency.
//!
//! ```text
//! cargo run --release --example noisy_neighbor
//! ```
//!
//! The campaign version of this experiment — every catalog scheme, off
//! and on, with per-tenant comparison pairs in `BENCH_qos.json` — is
//! `sweep --qos` (see docs/REPORT_SCHEMA.md for the report fields).

use mithril_repro::sim::{Metrics, QosPolicy, Scheme, System, SystemConfig};
use mithril_repro::workloads::noisy_neighbor_mix;

const CORES: usize = 4;
const INSTS_PER_CORE: u64 = 20_000;
const SEED: u64 = 1;

/// Runs the noisy-neighbor mix under Mithril with the given QoS policy.
fn run(qos: QosPolicy) -> Result<Metrics, Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::table_iii();
    cfg.cores = CORES;
    cfg.seed = SEED;
    cfg.scheme = Scheme::Mithril {
        rfm_th: 64,
        ad_th: None,
        plus: false,
    };
    cfg.qos = qos;
    let set = noisy_neighbor_mix(CORES, cfg.mapping(), SEED);
    let mut sys = System::new(cfg, set)?;
    Ok(sys.run(INSTS_PER_CORE, u64::MAX))
}

/// Worst victim read p99: the mix pins the hammering tenant on the
/// highest core index, so every other core is a victim.
fn victim_p99(m: &Metrics) -> u64 {
    let hammer = m.per_core.iter().map(|(core, _)| core).max();
    m.per_core
        .iter()
        .filter(|(core, _)| Some(*core) != hammer)
        .map(|(_, c)| c.read_latency.p99())
        .max()
        .unwrap_or(0)
}

/// min/max activations across tenants — 1.0 is perfectly fair.
fn fairness(m: &Metrics) -> f64 {
    let acts: Vec<u64> = m.per_core.iter().map(|(_, c)| c.acts).collect();
    match (acts.iter().min(), acts.iter().max()) {
        (Some(&lo), Some(&hi)) if hi > 0 => lo as f64 / hi as f64,
        _ => 0.0,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The tenancy: core 3 runs a multi-sided hammer; cores 0-2 run
    //    pointer-chasing / random-access tenants whose p99 read latency
    //    is what a cloud operator actually watches.
    println!(
        "Noisy neighbor: {CORES} tenants, core {} hammers.\n",
        CORES - 1
    );

    // 2. Baseline — Mithril protects the DRAM (zero flips), but the
    //    mitigation work the hammer provokes is paid by everyone.
    let off = run(QosPolicy::Off)?;

    // 3. Same seed, same tenants, QoS throttling on: the controller
    //    scores each thread's share of tracker pressure (RFM armings,
    //    mitigation triggers), elects the dominant source as suspect,
    //    and clamps it with a per-thread token bucket.
    let on = run(QosPolicy::Throttle(Default::default()))?;

    // 4. The operator's view: victims' tail and fairness improve, the
    //    hammer pays, and flip safety is untouched.
    println!("                      QoS off     QoS on");
    println!(
        "  victim p99 (ps)   {:>9}  {:>9}",
        victim_p99(&off),
        victim_p99(&on)
    );
    println!(
        "  fairness (acts)   {:>9.3}  {:>9.3}",
        fairness(&off),
        fairness(&on)
    );
    println!("  bit flips         {:>9}  {:>9}", off.flips, on.flips);

    // 5. Attribution: the qos section names the throttled thread. The
    //    hammer dominates cumulative pressure and owns every deferral;
    //    victims are never elected suspect.
    let q = on.qos.as_ref().expect("QoS-on metrics carry a qos section");
    println!(
        "\nQoS: {} windows, {} ACTs deferred",
        q.windows, q.throttled_acts
    );
    for (t, s) in q.per_thread.iter().enumerate() {
        println!(
            "  thread {t}: pressure {:>4}  suspect windows {:>3}  throttled acts {:>3}",
            s.pressure, s.suspect_windows, s.throttled_acts
        );
    }
    assert!(on.qos.is_some() && off.qos.is_none());
    assert_eq!(off.flips, 0);
    assert_eq!(on.flips, 0);
    assert!(victim_p99(&on) < victim_p99(&off));

    println!("\nCampaign version (all schemes, off/on pairs, BENCH_qos.json):");
    println!("  cargo run --release -p mithril-runner --bin sweep -- --qos --smoke");
    Ok(())
}
