//! Configuration explorer: the trade-off a DRAM vendor navigates when
//! shipping Mithril (paper Section IV-D, Fig. 6).
//!
//! Prints, for a target FlipTH given on the command line (default 6250),
//! the whole feasible (RFMTH → Nentry/table-size) family, the adaptive
//! refresh surcharge, and the PARFM/PARA operating points at the same
//! protection level for comparison.
//!
//! ```text
//! cargo run --release --example config_explorer -- 3125
//! ```

use mithril_repro::baselines::{parfm_analysis, ParaConfig};
use mithril_repro::core::MithrilConfig;
use mithril_repro::dram::Ddr5Timing;

fn main() {
    let flip_th: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_250);
    let timing = Ddr5Timing::ddr5_4800();

    println!("Mithril configuration family for FlipTH = {flip_th}");
    println!("(every row guarantees M < FlipTH/2 — deterministic protection)\n");
    println!(
        "{:>7} {:>8} {:>12} {:>11} {:>15}",
        "RFMTH", "Nentry", "counter bits", "table KiB", "+adaptive(200)"
    );
    for rfm_th in [16u64, 32, 64, 128, 256, 512, 1024] {
        match MithrilConfig::for_flip_threshold(flip_th, rfm_th, &timing) {
            Ok(cfg) => {
                let adaptive = cfg
                    .with_adaptive(200, &timing)
                    .map(|a| format!("{} entries", a.nentry))
                    .unwrap_or_else(|_| "-".into());
                println!(
                    "{:>7} {:>8} {:>12} {:>11.2} {:>15}",
                    rfm_th,
                    cfg.nentry,
                    cfg.counter_bits(&timing),
                    cfg.table_kib(),
                    adaptive
                );
            }
            Err(e) => println!("{rfm_th:>7} {:>8}  ({e})", "-"),
        }
    }

    println!("\nProbabilistic alternatives at the same FlipTH (10^-15 target):");
    match parfm_analysis::max_rfm_th(flip_th, 1e-15, 22, &timing) {
        Some(r) => {
            println!("  PARFM: RFMTH = {r} (refreshes on every RFM, no table at all)")
        }
        None => println!("  PARFM: cannot meet the target at any RFMTH"),
    }
    let para = ParaConfig::for_failure_target(flip_th, 1e-15, timing.act_budget_per_trefw(), 22);
    println!(
        "  PARA:  refresh probability p = {:.5} (one ARR per ~{:.0} ACTs)",
        para.probability,
        1.0 / para.probability.max(1e-12)
    );
    println!("\nReading the table: larger RFMTH = fewer RFM stalls (performance)");
    println!("but a bigger table (area). The adaptive column shows the extra");
    println!("entries Theorem 2 demands so that energy-saving skips stay safe.");
}
